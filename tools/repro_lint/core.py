"""Core machinery for repro-lint: diagnostics, suppressions, file walks.

The linter is deliberately dependency-free: :mod:`ast` for structure,
:mod:`tokenize` for comments (``ast`` drops them), and nothing else.
Rules come in two shapes:

* per-file rules (:class:`Rule`, registered with :func:`register`)
  receive a :class:`FileContext` for one parsed file;
* project rules (:class:`ProjectRule`, registered with
  :func:`register_project`) receive the whole
  :class:`~tools.repro_lint.project.ProjectIndex` plus its
  :class:`~tools.repro_lint.callgraph.CallGraph` and may relate facts
  across modules.

Line suppressions use the same shape as ruff's ``noqa``::

    risky_call()  # repro-lint: ignore[RPL003] one-line justification

A bare ``# repro-lint: ignore`` (no code list) suppresses every rule on
that line; a code list suppresses exactly those codes.

Per-file results (summary + post-suppression diagnostics) are cached to
disk keyed on content hashes; project rules always re-run against the
reassembled index, so editing a helper re-checks every module that
reaches it through the call graph even though only the helper's cache
entry is invalidated.
"""

from __future__ import annotations

import ast
import contextlib
import io
import re
import tokenize
from collections.abc import Iterable, Iterator
from dataclasses import dataclass, field
from pathlib import Path

from tools.repro_lint.project import (
    IndexCache,
    ModuleSummary,
    ProjectIndex,
    file_digest,
    module_name_for_path,
    summarize_module,
)

__all__ = [
    "Diagnostic",
    "FileContext",
    "Rule",
    "ProjectRule",
    "RULES",
    "PROJECT_RULES",
    "PARSE_ERROR_CODE",
    "LintReport",
    "register",
    "register_project",
    "all_rule_codes",
    "collect_suppressions",
    "iter_python_files",
    "lint_file",
    "lint_paths",
    "walk_scoped",
]

SUPPRESSION_RE = re.compile(
    r"#\s*repro-lint:\s*ignore(?:\[(?P<codes>[A-Za-z0-9_,\s]+)\])?"
)

#: Pseudo-rule reported when a file cannot be parsed.  A parse failure
#: is a finding about that file, not a reason to abort the whole run.
PARSE_ERROR_CODE = "RPL999"


@dataclass(frozen=True, order=True)
class Diagnostic:
    """One finding: ``path:line:col: CODE message``."""

    path: str
    line: int
    col: int
    code: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"


def collect_suppressions(source: str) -> dict[int, frozenset[str] | None]:
    """Map line number → suppressed codes (``None`` means *all* codes)."""
    suppressions: dict[int, frozenset[str] | None] = {}
    # An untokenizable file already failed ast.parse upstream.
    with contextlib.suppress(tokenize.TokenError):
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = SUPPRESSION_RE.search(token.string)
            if match is None:
                continue
            codes = match.group("codes")
            if codes is None:
                suppressions[token.start[0]] = None
            else:
                parsed = frozenset(
                    code.strip().upper() for code in codes.split(",") if code.strip()
                )
                existing = suppressions.get(token.start[0], frozenset())
                if existing is None:
                    continue
                suppressions[token.start[0]] = parsed | existing
    return suppressions


class FileContext:
    """Everything a per-file rule needs to know about one parsed file."""

    def __init__(self, path: Path, display: str, source: str, tree: ast.Module) -> None:
        self.path = path
        self.display = display
        #: Resolved POSIX path used for scope matching, so rules behave
        #: identically on the real tree and on fixture trees.
        self.resolved = path.resolve().as_posix()
        self.source = source
        self.tree = tree
        self.suppressions = collect_suppressions(source)

    def in_scope(self, patterns: Iterable[str]) -> bool:
        return any(pattern in self.resolved for pattern in patterns)

    def diagnostic(self, node: ast.AST, code: str, message: str) -> Diagnostic:
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0) + 1
        return Diagnostic(self.display, line, col, code, message)

    def suppressed(self, diagnostic: Diagnostic) -> bool:
        codes = self.suppressions.get(diagnostic.line, frozenset())
        if diagnostic.line not in self.suppressions:
            return False
        return codes is None or diagnostic.code in codes


class Rule:
    """Base class: one diagnostic code, one :meth:`check` pass."""

    code = "RPL000"
    title = "abstract rule"
    rationale = ""

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        raise NotImplementedError


class ProjectRule:
    """Base class for whole-program rules.

    :meth:`check_project` sees every module summary and the call graph
    at once; it is responsible for honouring suppressions itself (via
    :meth:`~tools.repro_lint.project.ModuleSummary.suppressed`) because
    there is no single :class:`FileContext` to consult.
    """

    code = "RPL700"
    title = "abstract project rule"
    rationale = ""

    def check_project(self, index: ProjectIndex, graph) -> Iterator[Diagnostic]:
        raise NotImplementedError


#: Registries, populated by :mod:`tools.repro_lint.rules` and
#: :mod:`tools.repro_lint.project_rules` at import time.
RULES: list[Rule] = []
PROJECT_RULES: list[ProjectRule] = []


def register(rule_class: type[Rule]) -> type[Rule]:
    RULES.append(rule_class())
    return rule_class


def register_project(rule_class: type[ProjectRule]) -> type[ProjectRule]:
    PROJECT_RULES.append(rule_class())
    return rule_class


def all_rule_codes() -> frozenset[str]:
    """Every selectable code: per-file, project, and the parse pseudo-rule."""
    return frozenset(
        {rule.code for rule in RULES}
        | {rule.code for rule in PROJECT_RULES}
        | {PARSE_ERROR_CODE}
    )


def walk_scoped(tree: ast.Module) -> Iterator[tuple[ast.AST, str]]:
    """Yield ``(node, qualname)`` for every node in ``tree``.

    ``qualname`` is the dotted path of enclosing class/function scopes
    (empty at module level).  A ``FunctionDef``/``ClassDef`` node itself
    is reported under its *enclosing* scope; its body under its own.
    """
    stack: list[str] = []

    def visit(node: ast.AST) -> Iterator[tuple[ast.AST, str]]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                yield child, ".".join(stack)
                stack.append(child.name)
                yield from visit(child)
                stack.pop()
            else:
                yield child, ".".join(stack)
                yield from visit(child)

    yield from visit(tree)


# ----------------------------------------------------------------------
# Drivers
# ----------------------------------------------------------------------
_SKIP_DIRS = {"__pycache__", ".git", ".hypothesis", ".benchmarks", "results"}

#: Directories containing this marker file are pruned when *expanding a
#: directory*, so the repo self-lint skips deliberate-violation fixture
#: trees while tests can still lint those trees by passing them (or a
#: subtree below the marker) as an explicit root.
IGNORE_MARKER = ".repro-lint-ignore"


def _under_marker(candidate: Path, root: Path) -> bool:
    parent = candidate.parent
    while parent != root:
        if (parent / IGNORE_MARKER).is_file():
            return True
        if parent == parent.parent:
            break
        parent = parent.parent
    return False


def iter_python_files(paths: Iterable[str | Path]) -> Iterator[Path]:
    """Expand files/directories into a sorted stream of ``.py`` files."""
    for raw in paths:
        path = Path(raw)
        if path.is_file():
            if path.suffix == ".py":
                yield path
            continue
        if not path.is_dir():
            raise FileNotFoundError(f"no such file or directory: {raw}")
        for candidate in sorted(path.rglob("*.py")):
            if any(part in _SKIP_DIRS or part.startswith(".") for part in candidate.parts):
                continue
            if _under_marker(candidate, path):
                continue
            yield candidate


@dataclass
class LintReport:
    """Everything a run produced, for the CLI to render."""

    findings: list[Diagnostic]
    checked: int
    parse_errors: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    summaries: list[ModuleSummary] = field(default_factory=list)

    def statistics(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for finding in self.findings:
            counts[finding.code] = counts.get(finding.code, 0) + 1
        return dict(sorted(counts.items()))


def analyze_file(
    path: Path,
    display: str | None = None,
    cache: IndexCache | None = None,
) -> ModuleSummary:
    """Produce the :class:`ModuleSummary` for one file.

    Runs every per-file rule and stores the *post-suppression*
    diagnostics on the summary, so a cache hit replays exactly what a
    fresh analysis would have reported.  A ``SyntaxError`` becomes an
    :data:`PARSE_ERROR_CODE` diagnostic instead of an exception.
    """
    display = display or str(path)
    resolved = path.resolve().as_posix()
    source = path.read_text(encoding="utf-8")
    sha = file_digest(source)
    if cache is not None:
        cached = cache.get(resolved, sha, display)
        if cached is not None:
            return cached
    module = module_name_for_path(resolved)
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as error:
        summary = ModuleSummary(
            module=module,
            path=display,
            resolved=resolved,
            sha256=sha,
            parse_error=f"{error.msg} (line {error.lineno})",
        )
        summary.suppressions = collect_suppressions(source)
        summary.diagnostics = [
            (
                PARSE_ERROR_CODE,
                error.lineno or 1,
                (error.offset or 1),
                f"cannot parse file: {error.msg}",
            )
        ]
        if cache is not None:
            cache.put(summary)
        return summary
    ctx = FileContext(path, display, source, tree)
    summary = summarize_module(module, display, resolved, sha, tree)
    summary.suppressions = dict(ctx.suppressions)
    diagnostics: list[tuple[str, int, int, str]] = []
    for rule in RULES:
        for diagnostic in rule.check(ctx):
            if not ctx.suppressed(diagnostic):
                diagnostics.append(
                    (diagnostic.code, diagnostic.line, diagnostic.col, diagnostic.message)
                )
    summary.diagnostics = diagnostics
    if cache is not None:
        cache.put(summary)
    return summary


def _selected(code: str, select: frozenset[str] | None, ignore: frozenset[str] | None) -> bool:
    if select is not None and code not in select:
        return False
    return not (ignore is not None and code in ignore)


def _run_project_rules(
    summaries: list[ModuleSummary],
    select: frozenset[str] | None,
    ignore: frozenset[str] | None,
) -> list[Diagnostic]:
    # Imported here: callgraph depends on project, and project_rules on
    # this module — a top-level import would be circular.
    from tools.repro_lint.callgraph import CallGraph

    index = ProjectIndex([s for s in summaries if s.parse_error is None])
    graph = CallGraph(index)
    findings: list[Diagnostic] = []
    for rule in PROJECT_RULES:
        if not _selected(rule.code, select, ignore):
            continue
        findings.extend(rule.check_project(index, graph))
    return findings


def lint_file(
    path: Path,
    display: str | None = None,
    select: frozenset[str] | None = None,
    ignore: frozenset[str] | None = None,
) -> list[Diagnostic]:
    """Lint one file standalone (per-file rules + a single-file index).

    Parse failures are reported as :data:`PARSE_ERROR_CODE` findings,
    not raised.
    """
    summary = analyze_file(path, display=display)
    findings = [
        Diagnostic(summary.path, line, col, code, message)
        for code, line, col, message in summary.diagnostics
        if _selected(code, select, ignore)
    ]
    findings.extend(_run_project_rules([summary], select, ignore))
    findings.sort()
    return findings


def lint_paths(
    paths: Iterable[str | Path],
    select: frozenset[str] | None = None,
    ignore: frozenset[str] | None = None,
    cache: IndexCache | None = None,
) -> LintReport:
    """Lint every python file under ``paths``.

    Per-file work is served from ``cache`` when content hashes match;
    project rules always run against the full reassembled index.
    Findings are sorted by location.  Import the rules modules first
    (the CLI does) or the registries are empty.
    """
    summaries: list[ModuleSummary] = []
    seen: set[str] = set()
    for path in iter_python_files(paths):
        resolved = path.resolve().as_posix()
        if resolved in seen:
            continue
        seen.add(resolved)
        summaries.append(analyze_file(path, display=str(path), cache=cache))

    findings: list[Diagnostic] = []
    parse_errors = 0
    for summary in summaries:
        if summary.parse_error is not None:
            parse_errors += 1
        findings.extend(
            Diagnostic(summary.path, line, col, code, message)
            for code, line, col, message in summary.diagnostics
            if _selected(code, select, ignore)
        )
    findings.extend(_run_project_rules(summaries, select, ignore))
    findings.sort()
    report = LintReport(
        findings=findings,
        checked=len(summaries),
        parse_errors=parse_errors,
        summaries=summaries,
    )
    if cache is not None:
        report.cache_hits = cache.hits
        report.cache_misses = cache.misses
        cache.save()
    return report
