"""MX-CIF Octree join (Jackins & Tanimoto [15], Samet).

The MX-CIF Octree subdivides the space regularly and stores every object
at the *smallest* octree cell that fully contains it — objects that
straddle a subdivision plane stay at the ancestor whose cell still
contains them.  Because octree cells are either nested or disjoint, two
overlapping objects always sit on one root-to-leaf path, so the join is:

* all object pairs *within* each node, plus
* each node's objects against the objects of every *ancestor* node.

This structure is exactly what the paper criticises (§2.1): "the
performance suffers when objects are mapped to the root (or cells close
to the root) ... as they then have to be compared with all objects on
lower levels, resulting in unnecessary intersection tests."  The
implementation reproduces that cost profile with nested-loop accounting
for both the within-node and the ancestor-descendant comparisons.

The tree is rebuilt from scratch every time step.
"""

from __future__ import annotations

import numpy as np

from repro.core.cells import pack_cell_ids, unpack_cell_ids
from repro.engine import GroupCrossJoinTask, GroupSelfJoinTask, JoinPlan
from repro.geometry import group_by_keys
from repro.joins.base import MBR_BYTES, POINTER_BYTES, SpatialJoinAlgorithm

from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.datasets import SpatialDataset
    from repro.engine import Executor

__all__ = [
    "MXCIFOctreeJoin",
    "octree_root_cube",
    "containment_depths",
    "count_directory_nodes",
]

#: Hard bound on subdivision depth (a 2^12-wide grid per axis at the
#: bottom is far below any useful object extent in the workloads).
MAX_DEPTH = 12


def octree_root_cube(dataset: SpatialDataset) -> tuple[np.ndarray, float]:
    """Root cube covering the dataset bounds (cubified, origin-anchored)."""
    lo, hi = dataset.bounds
    side = float((hi - lo).max())
    # Tiny headroom so boxes on the far boundary stay inside the cube.
    return np.asarray(lo, dtype=np.float64), side * (1.0 + 1e-9)


def containment_depths(
    lo: np.ndarray,
    hi: np.ndarray,
    origin: np.ndarray,
    root_side: float,
    max_depth: int = MAX_DEPTH,
) -> tuple[np.ndarray, np.ndarray]:
    """Deepest depth at which each box fits inside a single octree cell.

    Returns ``(depths, coords)`` where ``coords`` are the integer cell
    coordinates at each object's assigned depth.  Vectorised over a loop
    of at most ``max_depth`` levels.
    """
    n = lo.shape[0]
    depths = np.zeros(n, dtype=np.int64)
    coords = np.zeros((n, 3), dtype=np.int64)
    active = np.arange(n, dtype=np.int64)
    for depth in range(1, max_depth + 1):
        if active.size == 0:
            break
        cell = root_side / (1 << depth)
        lo_cells = np.floor((lo[active] - origin) / cell).astype(np.int64)
        hi_cells = np.floor((hi[active] - origin) / cell).astype(np.int64)
        fits = (lo_cells == hi_cells).all(axis=1)
        fitting = active[fits]
        depths[fitting] = depth
        coords[fitting] = lo_cells[fits]
        active = fitting  # only objects that fit here can fit deeper
    return depths, coords


def count_directory_nodes(per_depth_coords: list[np.ndarray]) -> int:
    """Count the distinct directory nodes implied by the occupied cells.

    A real octree materialises every node on the path from the root to
    each occupied cell; this computes that count for the footprint model
    without building the paths explicitly.
    """
    total = 0
    carried = np.empty((0, 3), dtype=np.int64)
    for depth in range(len(per_depth_coords) - 1, -1, -1):
        merged = np.unique(
            np.concatenate([per_depth_coords[depth], carried]), axis=0
        )
        total += merged.shape[0]
        carried = merged >> 1
    return total


class MXCIFOctreeJoin(SpatialJoinAlgorithm):
    """Self-join over an MX-CIF Octree (within-node + ancestor comparisons)."""

    name = "mxcif-octree"

    def __init__(self, count_only: bool = False, max_depth: int = MAX_DEPTH, executor: Executor | None = None) -> None:
        super().__init__(count_only=count_only, executor=executor)
        if max_depth < 1:
            raise ValueError(f"max_depth must be at least 1, got {max_depth}")
        self.max_depth = int(max_depth)
        self._index = None

    def _build(self, dataset: SpatialDataset) -> None:
        lo, hi = dataset.boxes()
        origin, root_side = octree_root_cube(dataset)
        depths, coords = containment_depths(
            lo, hi, origin, root_side, max_depth=self.max_depth
        )
        # Per-depth node groupings of the occupied cells.
        per_depth = []
        for depth in range(self.max_depth + 1):
            mask = depths == depth
            ids = np.flatnonzero(mask)
            if ids.size == 0:
                per_depth.append(None)
                continue
            keys = pack_cell_ids(coords[ids])
            cat, starts, stops, unique_keys = group_by_keys(keys, ids=ids)
            per_depth.append(
                {
                    "cat": cat,
                    "starts": starts,
                    "stops": stops,
                    "keys": unique_keys,
                    "node_coords": unpack_cell_ids(unique_keys),
                }
            )
        self._index = {"lo": lo, "hi": hi, "per_depth": per_depth}

    def plan(self, dataset: SpatialDataset) -> JoinPlan:
        """One task per subtree level plus one per (level, ancestor) pair.

        Levels are independent work units: each occupied depth joins its
        own nodes internally, and every occupied (depth, ancestor-depth)
        combination joins descendants against the occupied ancestors its
        shifted coordinates locate — the engine's per-subtree partition.
        """
        index = self._index
        per_depth = index["per_depth"]
        context = {"lo": index["lo"], "hi": index["hi"]}
        level_keys = {}
        tasks = []
        # Within-node nested loops, one task per occupied depth.
        for depth, level in enumerate(per_depth):
            if level is None:
                continue
            keys = (f"cat{depth}", f"starts{depth}", f"stops{depth}")
            context[keys[0]] = level["cat"]
            context[keys[1]] = level["starts"]
            context[keys[2]] = level["stops"]
            level_keys[depth] = keys
            tasks.append(
                GroupSelfJoinTask(
                    groups=np.arange(level["keys"].size, dtype=np.int64),
                    count="full",
                    keys=keys,
                )
            )

        # Node-vs-ancestor nested loops: for every occupied node, find its
        # occupied ancestors by shifting its coordinates up the tree.
        for depth in range(1, len(per_depth)):
            node_level = per_depth[depth]
            if node_level is None:
                continue
            rep_coords = node_level["node_coords"]
            for ancestor_depth in range(depth):
                ancestor_level = per_depth[ancestor_depth]
                if ancestor_level is None:
                    continue
                shifted = rep_coords >> (depth - ancestor_depth)
                shifted_keys = pack_cell_ids(shifted)
                slots = np.searchsorted(ancestor_level["keys"], shifted_keys)
                slots = np.clip(slots, 0, ancestor_level["keys"].size - 1)
                found = ancestor_level["keys"][slots] == shifted_keys
                if not found.any():
                    continue
                tasks.append(
                    GroupCrossJoinTask(
                        pair_a=slots[found],
                        pair_b=np.flatnonzero(found),
                        count="full",
                        a_keys=level_keys[ancestor_depth],
                        b_keys=level_keys[depth],
                    )
                )
        return JoinPlan(context=context, tasks=tasks)

    def memory_footprint(self) -> int:
        if self._index is None:
            return 0
        per_depth_coords = [
            level["node_coords"]
            if level is not None
            else np.empty((0, 3), dtype=np.int64)
            for level in self._index["per_depth"]
        ]
        n_nodes = count_directory_nodes(per_depth_coords)
        n_objects = self._index["lo"].shape[0]
        # Node record: cube MBR, eight child pointers, object-list header.
        node_bytes = MBR_BYTES + 8 * POINTER_BYTES + 16
        return n_nodes * node_bytes + n_objects * POINTER_BYTES
