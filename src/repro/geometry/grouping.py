"""Vectorised grouping of objects by integer keys (grid cells, tree nodes).

Every space-partitioning index in this repository assigns objects to
integer-keyed buckets and then needs the bucket populations as
contiguous index ranges.  This helper performs that grouping with one
sort instead of per-object hash insertions.
"""

from __future__ import annotations

import numpy as np

__all__ = ["group_by_keys"]


def group_by_keys(
    keys: np.ndarray,
    secondary_sort: np.ndarray | None = None,
    ids: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Group object indices by integer key.

    Parameters
    ----------
    keys:
        ``(n,)`` integer bucket key per object.
    secondary_sort:
        Optional ``(n,)`` sort key applied *within* each bucket (e.g. the
        lower x bound, so bucket populations come out plane-sweep ready).
    ids:
        Optional object ids to group; defaults to ``arange(n)``.

    Returns
    -------
    tuple
        ``(cat, starts, stops, unique_keys)`` — ``cat`` holds the grouped
        object ids; bucket ``k`` (with key ``unique_keys[k]``) owns
        ``cat[starts[k]:stops[k]]``.  ``unique_keys`` is ascending.
    """
    keys = np.asarray(keys, dtype=np.int64)
    n = keys.size
    if ids is None:
        ids = np.arange(n, dtype=np.int64)
    else:
        ids = np.asarray(ids, dtype=np.int64)
        if ids.shape != keys.shape:
            raise ValueError("ids must match keys in shape")
    if n == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty.copy(), empty.copy(), empty.copy()
    order = (
        np.lexsort((np.asarray(secondary_sort), keys))
        if secondary_sort is not None
        else np.argsort(keys, kind="stable")
    )
    sorted_keys = keys[order]
    boundaries = np.flatnonzero(sorted_keys[1:] != sorted_keys[:-1]) + 1
    starts = np.concatenate([[0], boundaries]).astype(np.int64)
    stops = np.concatenate([boundaries, [n]]).astype(np.int64)
    return ids[order], starts, stops, sorted_keys[starts]
