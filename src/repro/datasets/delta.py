"""Typed motion deltas: what changed between two dataset versions.

The paper's simulation loop mutates the object list in place and the
join recomputes from scratch (Section 3.2).  Incremental pair-set
maintenance (ROADMAP item 2) needs more: *which* objects moved and by
how much.  :class:`MotionDelta` is that record — every motion model
returns one from ``step`` and :class:`~repro.datasets.dataset.
SpatialDataset` produces it through :meth:`~repro.datasets.dataset.
SpatialDataset.commit_motion`, the sanctioned delta-aware update path.

A delta is pinned to a specific dataset instance (``dataset_uid``) and
to a specific version transition (``base_version`` → ``version``), so a
consumer can prove the delta describes exactly the mutation that
separates its cached state from the dataset's current state.  Deltas
for unrelated datasets, or stale deltas, are detectable and must be
rejected rather than applied.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["MotionDelta"]


@dataclass(frozen=True)
class MotionDelta:
    """One committed position update: moved indices plus displacements.

    Attributes
    ----------
    dataset_uid:
        :attr:`SpatialDataset.uid` of the dataset the delta belongs to.
    base_version:
        Dataset version *before* the update was committed.
    version:
        Dataset version *after* the update (``base_version + 1``).
    n_objects:
        Object count at commit time (datasets never resize, but the
        check keeps the contract explicit).
    moved:
        Sorted ``int64`` indices of the objects whose center changed.
    displacement:
        ``(len(moved), 3)`` per-moved-object displacement vectors
        (``after - before``).
    """

    dataset_uid: int
    base_version: int
    version: int
    n_objects: int
    moved: np.ndarray = field(repr=False)
    displacement: np.ndarray = field(repr=False)

    def __post_init__(self) -> None:
        moved = np.ascontiguousarray(self.moved, dtype=np.int64)
        displacement = np.ascontiguousarray(self.displacement, dtype=np.float64)
        if moved.ndim != 1:
            raise ValueError(f"moved must be 1-D, got shape {moved.shape}")
        if displacement.shape != (moved.shape[0], 3):
            raise ValueError(
                f"displacement shape {displacement.shape} does not match "
                f"{moved.shape[0]} moved objects"
            )
        if moved.size and (moved[0] < 0 or moved[-1] >= self.n_objects):
            raise ValueError("moved indices out of range")
        if moved.size > 1 and (np.diff(moved) <= 0).any():
            raise ValueError("moved indices must be strictly increasing")
        object.__setattr__(self, "moved", moved)
        object.__setattr__(self, "displacement", displacement)

    @property
    def n_moved(self) -> int:
        """Number of objects that moved in this step."""
        return int(self.moved.shape[0])

    @property
    def moved_fraction(self) -> float:
        """Fraction of the dataset that moved — the churn signal."""
        if self.n_objects == 0:
            return 0.0
        return self.n_moved / self.n_objects

    def moved_mask(self) -> np.ndarray:
        """Boolean ``(n_objects,)`` mask, ``True`` where the object moved."""
        mask = np.zeros(self.n_objects, dtype=bool)
        mask[self.moved] = True
        return mask

    @property
    def max_displacement(self) -> float:
        """Largest per-object displacement magnitude (0.0 if none moved)."""
        if self.n_moved == 0:
            return 0.0
        return float(np.linalg.norm(self.displacement, axis=1).max())

    @classmethod
    def from_positions(
        cls,
        before: np.ndarray,
        after: np.ndarray,
        *,
        dataset_uid: int,
        base_version: int,
        version: int,
    ) -> MotionDelta:
        """Diff two ``(n, 3)`` center snapshots into a delta."""
        before = np.asarray(before, dtype=np.float64)
        after = np.asarray(after, dtype=np.float64)
        if before.shape != after.shape:
            raise ValueError(
                f"snapshot shapes differ: {before.shape} vs {after.shape}"
            )
        moved = np.flatnonzero((before != after).any(axis=1)).astype(np.int64)
        return cls(
            dataset_uid=dataset_uid,
            base_version=base_version,
            version=version,
            n_objects=before.shape[0],
            moved=moved,
            displacement=after[moved] - before[moved],
        )
