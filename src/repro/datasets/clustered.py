"""Skewed (clustered) moving-object benchmark (paper Section 5.3).

The paper's skewed benchmark draws cluster centers uniformly at random
and places objects around them with a normal distribution of standard
deviation ``sd``; all objects of a cluster share one motion vector so
the distribution is preserved during the simulation.  Figure 9(e) sweeps
``sd`` from 0.5 to 1.5 and Figure 9(f) sweeps the number of clusters
from 1 to 5.

Note on scale: the paper uses ``sd`` in the same units as the 1000-unit
domain, producing extremely dense clusters — that is intentional; high
join selectivity is exactly the regime THERMAL-JOIN targets.  Callers at
reproduction scale should size ``n_objects`` accordingly (the result set
grows quadratically inside a cluster).
"""

from __future__ import annotations

import numpy as np

from repro.datasets.dataset import SpatialDataset
from repro.datasets.motion import ClusterDrift
from repro.datasets.uniform import UNIFORM_BOUNDS

__all__ = ["make_clustered_dataset", "make_clustered_workload"]


def make_clustered_dataset(
    n_objects: int,
    n_clusters: int = 1,
    sd: float = 1.0,
    width: float = 15.0,
    bounds: tuple[np.ndarray, np.ndarray] = UNIFORM_BOUNDS,
    seed: int = 0,
    margin_factor: float = 3.0,
) -> tuple[SpatialDataset, np.ndarray]:
    """Generate the skewed benchmark dataset.

    Parameters
    ----------
    n_objects:
        Total number of objects, divided as evenly as possible among the
        clusters (the paper divides "the same number of objects among
        many clusters").
    n_clusters:
        Number of Gaussian clusters.
    sd:
        Standard deviation of each cluster (isotropic normal).
    width:
        Shared cubic object width.
    bounds:
        Domain bounds.  Cluster centers are drawn uniformly inside the
        bounds shrunk by ``margin_factor * sd`` so the clusters do not
        straddle the boundary.
    seed:
        Seed for the generator.

    Returns
    -------
    tuple
        ``(dataset, cluster_labels)`` where ``cluster_labels`` maps each
        object to its cluster (needed by the cluster-coherent motion
        model).
    """
    if n_objects <= 0:
        raise ValueError(f"n_objects must be positive, got {n_objects}")
    if n_clusters <= 0:
        raise ValueError(f"n_clusters must be positive, got {n_clusters}")
    if sd <= 0:
        raise ValueError(f"sd must be positive, got {sd}")
    rng = np.random.default_rng(seed)
    lo = np.asarray(bounds[0], dtype=np.float64)
    hi = np.asarray(bounds[1], dtype=np.float64)
    margin = margin_factor * sd
    center_lo = lo + margin
    center_hi = hi - margin
    if not (center_lo < center_hi).all():
        raise ValueError("bounds too small for the requested cluster spread")
    cluster_centers = rng.uniform(center_lo, center_hi, size=(n_clusters, 3))

    base = n_objects // n_clusters
    remainder = n_objects % n_clusters
    sizes = np.full(n_clusters, base, dtype=np.int64)
    sizes[:remainder] += 1
    labels = np.repeat(np.arange(n_clusters, dtype=np.int64), sizes)
    centers = cluster_centers[labels] + rng.normal(scale=sd, size=(n_objects, 3))
    np.clip(centers, lo, hi, out=centers)

    dataset = SpatialDataset(centers, width, bounds=(lo, hi))
    return dataset, labels


def make_clustered_workload(
    n_objects: int,
    n_clusters: int = 1,
    sd: float = 1.0,
    width: float = 15.0,
    translation: float = 10.0,
    bounds: tuple[np.ndarray, np.ndarray] = UNIFORM_BOUNDS,
    seed: int = 0,
) -> tuple[SpatialDataset, ClusterDrift, np.ndarray]:
    """Generate the skewed dataset together with its coherent motion model.

    Returns ``(dataset, motion, cluster_labels)``.
    """
    dataset, labels = make_clustered_dataset(
        n_objects, n_clusters=n_clusters, sd=sd, width=width, bounds=bounds, seed=seed
    )
    motion = ClusterDrift(dataset, labels, distance=translation, seed=seed + 1)
    return dataset, motion, labels
