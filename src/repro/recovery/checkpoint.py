"""Versioned, checksummed checkpoints: manifest JSON + ``.npz`` payload.

A checkpoint for step ``k`` is two files in the checkpoint directory:

* ``step-%06d.npz`` — the payload: every resumable array (dataset SoA
  arrays, motion state, maintained pair keys, P-Grid structure).
* ``step-%06d.json`` — the manifest: format marker + version, the step,
  the payload file name, a per-array ``{sha256, shape, dtype}`` table
  (checksummed over the raw array bytes) and the JSON-able meta tree
  (tuner/churn state, RNG state, completed step records, ...).

The payload is written first, the manifest second — both atomically via
:mod:`repro.recovery.atomic` — so the manifest's existence *is* the
commit point: a manifest never references a payload that was not fully
durable when the manifest appeared.

Loading walks manifests newest-first and verifies every declared array
checksum; anything unreadable, mis-shaped or mismatched counts as one
corrupt skip and falls back to the next older checkpoint.  Retention
keeps the newest ``keep_last`` checkpoints and deletes the rest —
deletion needs no atomicity, a half-deleted checkpoint is just a
corrupt one and skipped like any other.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
import zipfile
from pathlib import Path
from typing import Any

import numpy as np

from repro.recovery.atomic import write_json, write_npz

__all__ = ["Checkpoint", "CheckpointError", "CheckpointManager"]

#: Format marker every manifest must carry.
MANIFEST_FORMAT = "repro-checkpoint"
#: Current checkpoint format version.
FORMAT_VERSION = 1

_MANIFEST_RE = re.compile(r"^step-(\d{6,})\.json$")


class CheckpointError(RuntimeError):
    """No usable checkpoint could be loaded."""


class Checkpoint:
    """One verified, loaded checkpoint."""

    def __init__(
        self,
        step: int,
        arrays: dict[str, np.ndarray],
        meta: dict[str, Any],
        path: Path,
    ) -> None:
        self.step = step
        self.arrays = arrays
        self.meta = meta
        #: The manifest path this checkpoint was loaded from.
        self.path = path

    def __repr__(self) -> str:
        return f"Checkpoint(step={self.step}, arrays={len(self.arrays)})"


def _sha256(array: np.ndarray) -> str:
    return hashlib.sha256(array.tobytes()).hexdigest()


class CheckpointManager:
    """Writes, verifies, retains and loads checkpoints in one directory."""

    def __init__(self, directory: str | os.PathLike[str], keep_last: int = 3) -> None:
        if keep_last < 1:
            raise ValueError(f"keep_last must be at least 1, got {keep_last}")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.keep_last = int(keep_last)

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    def write(
        self, step: int, arrays: dict[str, np.ndarray], meta: dict[str, Any]
    ) -> int:
        """Durably commit a checkpoint for ``step``; returns bytes written."""
        if step < 0:
            raise ValueError(f"step must be non-negative, got {step}")
        payload_name = f"step-{step:06d}.npz"
        checksums = {
            name: {
                "sha256": _sha256(array),
                "shape": list(array.shape),
                "dtype": str(array.dtype),
            }
            for name, array in arrays.items()
        }
        nbytes = write_npz(self.directory / payload_name, arrays)
        manifest = {
            "format": MANIFEST_FORMAT,
            "version": FORMAT_VERSION,
            "step": int(step),
            "payload": payload_name,
            "arrays": checksums,
            "meta": meta,
        }
        nbytes += write_json(self.directory / f"step-{step:06d}.json", manifest)
        self._retain()
        return nbytes

    def _retain(self) -> None:
        """Delete everything but the newest ``keep_last`` checkpoints."""
        manifests = self.manifests()
        for path in manifests[: max(0, len(manifests) - self.keep_last)]:
            payload = path.with_suffix(".npz")
            # Payload first: if deletion dies between the two, the
            # leftover manifest fails verification and is skipped.
            payload.unlink(missing_ok=True)
            path.unlink(missing_ok=True)

    # ------------------------------------------------------------------
    # Loading
    # ------------------------------------------------------------------
    def manifests(self) -> list[Path]:
        """Manifest paths sorted by step, oldest first."""
        found = []
        for path in self.directory.iterdir():
            match = _MANIFEST_RE.match(path.name)
            if match is not None:
                found.append((int(match.group(1)), path))
        return [path for _step, path in sorted(found)]

    def load(self, manifest_path: Path) -> Checkpoint:
        """Load and verify one checkpoint; :class:`CheckpointError` if bad."""
        try:
            manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
        except (OSError, UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise CheckpointError(f"unreadable manifest {manifest_path}: {exc}") from exc
        if not isinstance(manifest, dict) or manifest.get("format") != MANIFEST_FORMAT:
            raise CheckpointError(f"{manifest_path} is not a checkpoint manifest")
        if manifest.get("version") != FORMAT_VERSION:
            raise CheckpointError(
                f"{manifest_path} has unsupported format version "
                f"{manifest.get('version')!r}"
            )
        payload_path = self.directory / str(manifest["payload"])
        try:
            with np.load(payload_path, allow_pickle=False) as payload:
                arrays = {name: payload[name] for name in payload.files}
        except (OSError, ValueError, KeyError, zipfile.BadZipFile) as exc:
            raise CheckpointError(f"unreadable payload {payload_path}: {exc}") from exc
        declared = manifest["arrays"]
        if set(declared) != set(arrays):
            raise CheckpointError(
                f"{payload_path} holds arrays {sorted(arrays)} but the "
                f"manifest declares {sorted(declared)}"
            )
        for name, expected in declared.items():
            array = arrays[name]
            if list(array.shape) != list(expected["shape"]) or str(
                array.dtype
            ) != str(expected["dtype"]):
                raise CheckpointError(
                    f"array {name!r} in {payload_path} has shape/dtype "
                    f"{array.shape}/{array.dtype}, manifest says "
                    f"{expected['shape']}/{expected['dtype']}"
                )
            if _sha256(array) != expected["sha256"]:
                raise CheckpointError(
                    f"array {name!r} in {payload_path} fails checksum "
                    "verification"
                )
        return Checkpoint(
            step=int(manifest["step"]),
            arrays=arrays,
            meta=manifest["meta"],
            path=manifest_path,
        )

    def load_latest(self) -> tuple[Checkpoint, int]:
        """Newest valid checkpoint plus the number of corrupt ones skipped.

        Walks manifests newest-first so a corrupted (or torn) newest
        checkpoint degrades to the previous one instead of killing the
        resume.  Raises :class:`CheckpointError` when nothing loads.
        """
        manifests = self.manifests()
        if not manifests:
            raise CheckpointError(f"no checkpoints found in {self.directory}")
        skipped = 0
        errors: list[str] = []
        for path in reversed(manifests):
            try:
                return self.load(path), skipped
            except CheckpointError as exc:
                skipped += 1
                errors.append(str(exc))
        raise CheckpointError(
            f"all {skipped} checkpoints in {self.directory} are corrupt: "
            + "; ".join(errors)
        )
