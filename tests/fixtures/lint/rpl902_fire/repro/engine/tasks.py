"""The global lock is re-created per worker process: no mutual exclusion."""

import threading

_LOCK = threading.Lock()


def work(payload):
    with _LOCK:
        return payload
