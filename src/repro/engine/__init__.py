"""Staged join-execution engine with pluggable executors.

Every join step in this repository runs through the same four-stage
pipeline (the partition-based formulation of Tsitsigkos & Mamoulis and
the candidate-generation/refinement split of adaptive geospatial joins):

``prepare``
    Index construction or incremental refresh for the dataset's current
    positions (each algorithm's ``_build``).
``partition``
    The algorithm emits a :class:`~repro.engine.plan.JoinPlan`: shared
    context arrays plus independent :class:`~repro.engine.plan.JoinTask`
    units — per-cell for grid joins, per-strip for plane sweeps, per
    subtree level for tree joins, or one fallback task wrapping a legacy
    ``_join``.
``verify``
    An :class:`~repro.engine.executors.Executor` schedules the tasks;
    every task funnels its candidates through the shared vectorised
    verification kernel (:mod:`repro.engine.verify`), emitting pairs
    into private :class:`~repro.geometry.PairAccumulator` shards.
``merge``
    Shards are merged in task order into canonical pairs; per-task
    counters are aggregated into :class:`~repro.joins.base.JoinStatistics`.

Executors are interchangeable: results are a pure function of the plan,
so serial, thread-pool and process-pool execution produce identical pair
sets (the test suite enforces this against the brute-force oracle).

That same purity makes tasks *retryable*: the executors recover from
task failures, hangs and worker death (retry on the pool, re-execute
inline, rebuild the pool, degrade process → thread → serial) without
changing the merged result, and record what happened in
``JoinStatistics.events``.  The fault-injection harness
(:mod:`repro.engine.faults`, ``REPRO_FAULTS``) exists to prove it.
"""

from repro.engine.executors import (
    Executor,
    ProcessExecutor,
    ContextPublication,
    SerialExecutor,
    ThreadExecutor,
    publish_context,
    resolve_executor,
)
from repro.engine.faults import (
    FaultPlan,
    InjectedFault,
    SimulatedCrash,
    format_faults,
    install_fault_plan,
    parse_faults,
)
from repro.engine.plan import (
    CellPairSweepTask,
    FallbackJoinTask,
    GroupCrossJoinTask,
    GroupSelfJoinTask,
    HotCellsTask,
    JoinPlan,
    JoinTask,
    SweepStripTask,
    TaskResult,
    chunk_by_volume,
)
from repro.engine.engine import DEFAULT_PARTITION_TASKS, execute_step
from repro.engine.incremental import (
    INCREMENTAL_ENV_VAR,
    ChurnPolicy,
    execute_delta_step,
    incremental_from_env,
    moved_groups,
)

__all__ = [
    "Executor",
    "SerialExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "ContextPublication",
    "publish_context",
    "resolve_executor",
    "FaultPlan",
    "InjectedFault",
    "SimulatedCrash",
    "format_faults",
    "install_fault_plan",
    "parse_faults",
    "JoinPlan",
    "JoinTask",
    "TaskResult",
    "FallbackJoinTask",
    "GroupSelfJoinTask",
    "GroupCrossJoinTask",
    "CellPairSweepTask",
    "HotCellsTask",
    "SweepStripTask",
    "chunk_by_volume",
    "execute_step",
    "execute_delta_step",
    "ChurnPolicy",
    "INCREMENTAL_ENV_VAR",
    "incremental_from_env",
    "moved_groups",
    "DEFAULT_PARTITION_TASKS",
]
