"""The staged step driver: prepare → partition → verify → merge.

:func:`execute_step` is what :meth:`SpatialJoinAlgorithm.step` delegates
to.  It times the four stages separately, schedules the plan's tasks on
the algorithm's executor, merges the per-task pair shards in task order,
aggregates per-task counters into :class:`~repro.joins.base.JoinStatistics`
(so existing figures see exactly the totals the monolithic path
produced), and asserts the :class:`~repro.joins.base.JoinResult` pairs
invariant.  Robustness events drained from the executor (task retries,
timeouts, pool rebuilds and degradations) land in
``JoinStatistics.events``/``task_retries`` so runs that survived a
fault stay visibly marked in every figure and benchmark downstream.
"""

from __future__ import annotations

import time

from repro.geometry import PairAccumulator

__all__ = ["execute_step", "DEFAULT_PARTITION_TASKS"]

#: Default partition grain for ported algorithms.  Fixed (rather than
#: derived from the executor's worker count) so pair sets and overlap
#: test totals are bit-identical across serial, thread and process
#: execution.
DEFAULT_PARTITION_TASKS = 8


def execute_step(algorithm, dataset):
    """Run one full join step for ``algorithm`` through the engine.

    Returns a :class:`~repro.joins.base.JoinResult`.
    """
    from repro.joins.base import JoinResult, JoinStatistics

    executor = algorithm.executor

    t0 = time.perf_counter()
    algorithm._build(dataset)  # prepare: index build / incremental refresh
    t1 = time.perf_counter()
    plan = algorithm.plan(dataset)  # partition: emit independent tasks
    t2 = time.perf_counter()
    results = executor.run(plan.tasks, plan.context, algorithm.count_only)
    events = executor.drain_events()  # robustness: retries, timeouts, downgrades
    t3 = time.perf_counter()

    # merge: shards → canonical pairs, counters → aggregate statistics.
    merged = PairAccumulator(count_only=algorithm.count_only)
    overlap_tests = 0
    task_counters = []
    for task_result in results:
        merged.merge(task_result.accumulator)
        overlap_tests += int(task_result.counters.get("overlap_tests", 0))
        task_counters.append(dict(task_result.counters))
    if plan.on_complete is not None:
        plan.on_complete(results)
    t4 = time.perf_counter()

    algorithm._last_prepare_seconds = t1 - t0
    phase_seconds = dict(algorithm._phase_seconds())
    for task_result in results:
        # The default "join" phase stays out of the breakdown unless the
        # algorithm declares it, matching the pre-engine convention that
        # only THERMAL-JOIN populates phase_seconds.
        if task_result.phase != "join" or task_result.phase in phase_seconds:
            phase_seconds[task_result.phase] = (
                phase_seconds.get(task_result.phase, 0.0) + task_result.seconds
            )

    from repro.engine.executors import RETRY_EVENT_KINDS

    algorithm.stats = JoinStatistics(
        overlap_tests=overlap_tests,
        build_seconds=t1 - t0,
        join_seconds=t4 - t1,
        memory_bytes=algorithm.memory_footprint(),
        phase_seconds=phase_seconds,
        stage_seconds={
            "prepare": t1 - t0,
            "partition": t2 - t1,
            "verify": t3 - t2,
            "merge": t4 - t3,
        },
        task_counters=task_counters,
        events=events,
        task_retries=sum(
            1 for event in events if event.get("kind") in RETRY_EVENT_KINDS
        ),
    )
    pairs = None
    if not algorithm.count_only:
        pairs = merged.as_arrays()
    result = JoinResult(
        n_results=len(merged), stats=algorithm.stats, pairs=pairs
    )
    assert (result.pairs is None) == algorithm.count_only, (
        "JoinResult.pairs must be materialised exactly when not count_only"
    )
    return result
