"""Benchmark for Figure 9 — synthetic sensitivity analysis (a–f).

Times one simulation step per competitor on the uniform and skewed
benchmarks and asserts the panels' qualitative outcomes at the sweep
endpoints: THERMAL-JOIN leads everywhere, higher skew means more work
for everyone, and spreading objects over more clusters relaxes the join.
"""

from __future__ import annotations

import pytest

from repro.experiments.figures import ALGORITHM_FACTORIES, FIG9_ALGORITHMS
from repro.experiments.workloads import scaled_clustered, scaled_uniform

from conftest import UNIFORM_N


@pytest.mark.parametrize("name", FIG9_ALGORITHMS)
def test_fig9_uniform_step(benchmark, name):
    """Panel (a/b/d) kernel: one moving uniform-benchmark step."""
    dataset, motion = scaled_uniform(UNIFORM_N, width=15.0, seed=401)
    algorithm = ALGORITHM_FACTORIES[name]()

    def step():
        result = algorithm.step(dataset)
        motion.step(dataset)
        return result

    result = benchmark(step)
    assert result.n_results > 0


@pytest.mark.parametrize("name", FIG9_ALGORITHMS)
def test_fig9_skewed_step(benchmark, name):
    """Panel (e/f) kernel: one moving skewed-benchmark step."""
    dataset, motion, _labels = scaled_clustered(2000, sd_factor=1.0, seed=402)
    algorithm = ALGORITHM_FACTORIES[name]()

    def step():
        result = algorithm.step(dataset)
        motion.step(dataset)
        return result

    result = benchmark(step)
    assert result.n_results > 0


def test_fig9c_width_variation_costs_thermal():
    """Panel (c): width variation forces T-Grids, so THERMAL-JOIN pays
    tests it avoids in the equal-width case — but stays correct."""
    from repro.core import ThermalJoin

    equal, _m = scaled_uniform(UNIFORM_N, width=15.0, seed=403)
    varied, _m = scaled_uniform(UNIFORM_N, width_range=(7.0, 23.0), seed=403)
    join_equal = ThermalJoin(resolution=1.0, count_only=True)
    join_varied = ThermalJoin(resolution=1.0, count_only=True)
    join_equal.step(equal)
    join_varied.step(varied)
    assert join_varied.last_step_info["tgrid_cells"] > join_equal.last_step_info[
        "tgrid_cells"
    ]


def test_fig9e_smaller_spread_is_more_selective():
    """Panel (e): shrinking the cluster spread raises selectivity."""
    from repro.core import ThermalJoin

    tight, _m, _l = scaled_clustered(2000, sd_factor=0.5, seed=404)
    loose, _m, _l = scaled_clustered(2000, sd_factor=1.5, seed=404)
    tight_res = ThermalJoin(resolution=1.0, count_only=True).step(tight)
    loose_res = ThermalJoin(resolution=1.0, count_only=True).step(loose)
    assert tight_res.n_results > loose_res.n_results


def test_fig9f_more_clusters_less_selective():
    """Panel (f): dividing the objects among more clusters lowers the
    density around each cluster and with it the join selectivity."""
    from repro.core import ThermalJoin

    one, _m, _l = scaled_clustered(2000, n_clusters=1, seed=405)
    five, _m, _l = scaled_clustered(2000, n_clusters=5, seed=405)
    one_res = ThermalJoin(resolution=1.0, count_only=True).step(one)
    five_res = ThermalJoin(resolution=1.0, count_only=True).step(five)
    assert one_res.n_results > five_res.n_results
