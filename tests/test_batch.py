"""Tests for the batched group-join primitives (repro.geometry.batch)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.geometry import (
    cross_join_groups,
    group_by_keys,
    mbr,
    self_join_groups,
)


def make_groups(rng, n_objects, n_groups, span=50.0, width=6.0):
    """Random boxes partitioned into groups; returns grouping + boxes."""
    centers = rng.uniform(0, span, size=(n_objects, 3))
    lo, hi = mbr.boxes_from_centers(centers, width)
    keys = rng.integers(0, n_groups, size=n_objects)
    cat, starts, stops, unique_keys = group_by_keys(keys, secondary_sort=lo[:, 0])
    return lo, hi, cat, starts, stops, unique_keys


class Collector:
    def __init__(self):
        self.pairs = set()
        self.groups = []

    def __call__(self, left, right, groups):
        for a, b, g in zip(left.tolist(), right.tolist(), groups.tolist(), strict=True):
            self.pairs.add((a, b))
            self.groups.append(g)


def naive_cross(lo, hi, members_a, members_b):
    out = set()
    for a in members_a:
        for b in members_b:
            if mbr.overlap_single(lo[a], hi[a], lo[b], hi[b]):
                out.add((a, b))
    return out


class TestCrossJoinGroups:
    def test_matches_naive_per_pair(self, rng):
        lo, hi, cat, starts, stops, keys = make_groups(rng, 120, 6)
        n_groups = keys.size
        pair_a = []
        pair_b = []
        expected = set()
        for ga in range(n_groups):
            for gb in range(n_groups):
                if ga == gb:
                    continue
                pair_a.append(ga)
                pair_b.append(gb)
                expected |= naive_cross(
                    lo, hi, cat[starts[ga]:stops[ga]], cat[starts[gb]:stops[gb]]
                )
        collector = Collector()
        tests = cross_join_groups(
            lo, hi, cat, starts, stops, cat, starts, stops,
            np.asarray(pair_a), np.asarray(pair_b), collector, count="full",
        )
        assert collector.pairs == expected
        # Full accounting: every candidate charged.
        sizes = stops - starts
        assert tests == int(
            (sizes[np.asarray(pair_a)] * sizes[np.asarray(pair_b)]).sum()
        )

    def test_sweep_count_is_cheaper(self, rng):
        lo, hi, cat, starts, stops, keys = make_groups(rng, 150, 4, span=80.0)
        pair_a = np.asarray([0, 1, 2])
        pair_b = np.asarray([1, 2, 3])
        full_collector = Collector()
        sweep_collector = Collector()
        full = cross_join_groups(
            lo, hi, cat, starts, stops, cat, starts, stops,
            pair_a, pair_b, full_collector, count="full",
        )
        swept = cross_join_groups(
            lo, hi, cat, starts, stops, cat, starts, stops,
            pair_a, pair_b, sweep_collector, count="x-sweep",
        )
        assert sweep_collector.pairs == full_collector.pairs
        assert swept <= full

    def test_chunking_invariance(self, rng):
        lo, hi, cat, starts, stops, keys = make_groups(rng, 200, 5)
        pair_a = np.arange(4)
        pair_b = np.arange(1, 5)
        big = Collector()
        small = Collector()
        cross_join_groups(
            lo, hi, cat, starts, stops, cat, starts, stops,
            pair_a, pair_b, big, chunk_candidates=10**9,
        )
        cross_join_groups(
            lo, hi, cat, starts, stops, cat, starts, stops,
            pair_a, pair_b, small, chunk_candidates=7,
        )
        assert big.pairs == small.pairs

    def test_pair_group_indices_point_into_pair_list(self, rng):
        lo, hi, cat, starts, stops, keys = make_groups(rng, 80, 3, span=20.0)
        pair_a = np.asarray([0, 2])
        pair_b = np.asarray([1, 1])
        collector = Collector()
        cross_join_groups(
            lo, hi, cat, starts, stops, cat, starts, stops,
            pair_a, pair_b, collector,
        )
        assert set(collector.groups) <= {0, 1}

    def test_empty_pair_list(self, rng):
        lo, hi, cat, starts, stops, _keys = make_groups(rng, 30, 2)
        collector = Collector()
        assert cross_join_groups(
            lo, hi, cat, starts, stops, cat, starts, stops,
            np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64), collector,
        ) == 0
        assert collector.pairs == set()

    def test_unknown_count_mode(self, rng):
        lo, hi, cat, starts, stops, _keys = make_groups(rng, 30, 2)
        with pytest.raises(ValueError):
            cross_join_groups(
                lo, hi, cat, starts, stops, cat, starts, stops,
                np.asarray([0]), np.asarray([1]), Collector(), count="bogus",
            )


class TestSelfJoinGroups:
    def test_matches_naive(self, rng):
        lo, hi, cat, starts, stops, keys = make_groups(rng, 120, 5)
        expected = set()
        for g in range(keys.size):
            members = cat[starts[g]:stops[g]]
            for x in range(members.size):
                for y in range(x + 1, members.size):
                    a, b = members[x], members[y]
                    if mbr.overlap_single(lo[a], hi[a], lo[b], hi[b]):
                        expected.add((int(a), int(b)))
        collector = Collector()
        tests = self_join_groups(
            lo, hi, cat, starts, stops,
            np.arange(keys.size), collector, count="full",
        )
        assert collector.pairs == expected
        sizes = stops - starts
        assert tests == int((sizes * (sizes - 1) // 2).sum())

    def test_sweep_accounting_requires_sorted_lists(self, rng):
        # make_groups sorts group members by x-lo, so the sweep count is
        # valid and bounded by the full count.
        lo, hi, cat, starts, stops, keys = make_groups(rng, 150, 4)
        groups = np.arange(keys.size)
        full = self_join_groups(
            lo, hi, cat, starts, stops, groups, Collector(), count="full"
        )
        swept = self_join_groups(
            lo, hi, cat, starts, stops, groups, Collector(), count="x-sweep"
        )
        assert swept <= full

    def test_subset_of_groups(self, rng):
        lo, hi, cat, starts, stops, keys = make_groups(rng, 100, 6)
        all_collector = Collector()
        some_collector = Collector()
        self_join_groups(
            lo, hi, cat, starts, stops, np.arange(keys.size), all_collector
        )
        self_join_groups(
            lo, hi, cat, starts, stops, np.asarray([0, 2]), some_collector
        )
        assert some_collector.pairs <= all_collector.pairs

    def test_empty_groups_list(self, rng):
        lo, hi, cat, starts, stops, _keys = make_groups(rng, 30, 2)
        assert self_join_groups(
            lo, hi, cat, starts, stops, np.empty(0, dtype=np.int64), Collector()
        ) == 0

    def test_chunking_invariance(self, rng):
        lo, hi, cat, starts, stops, keys = make_groups(rng, 180, 3)
        groups = np.arange(keys.size)
        big = Collector()
        small = Collector()
        self_join_groups(
            lo, hi, cat, starts, stops, groups, big, chunk_candidates=10**9
        )
        self_join_groups(
            lo, hi, cat, starts, stops, groups, small, chunk_candidates=5
        )
        assert big.pairs == small.pairs


class TestGroupByKeys:
    def test_groups_cover_all_ids(self, rng):
        keys = rng.integers(0, 10, size=100)
        cat, starts, stops, unique_keys = group_by_keys(keys)
        assert np.array_equal(np.sort(cat), np.arange(100))
        assert unique_keys.tolist() == sorted(set(keys.tolist()))

    def test_secondary_sort_within_groups(self, rng):
        keys = rng.integers(0, 5, size=60)
        order_key = rng.uniform(size=60)
        cat, starts, stops, _unique = group_by_keys(keys, secondary_sort=order_key)
        for g in range(starts.size):
            values = order_key[cat[starts[g]:stops[g]]]
            assert (np.diff(values) >= 0).all()

    def test_custom_ids(self):
        cat, starts, stops, unique = group_by_keys(
            np.asarray([2, 1, 2]), ids=np.asarray([10, 20, 30])
        )
        assert unique.tolist() == [1, 2]
        assert cat[starts[0]:stops[0]].tolist() == [20]
        assert sorted(cat[starts[1]:stops[1]].tolist()) == [10, 30]

    def test_empty_input(self):
        cat, starts, stops, unique = group_by_keys(np.empty(0, dtype=np.int64))
        assert cat.size == starts.size == stops.size == unique.size == 0

    def test_mismatched_ids_raise(self):
        with pytest.raises(ValueError):
            group_by_keys(np.asarray([1, 2]), ids=np.asarray([1]))
