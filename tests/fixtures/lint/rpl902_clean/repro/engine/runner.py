from .tasks import work


def run(pool, payload):
    return pool.submit(work, payload, 2).result()
