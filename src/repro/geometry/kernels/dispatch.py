"""Backend dispatch registry for the verify-kernel primitives.

All candidate verification in the repository flows through this module
(enforced by repro-lint rule RPL401: backend modules are imported only
inside ``repro/geometry/kernels/``).  A *backend* is a table mapping
every kernel name of :data:`~repro.geometry.kernels.spec.KERNEL_SPECS`
to a callable; the registry holds lazy factories for each backend and
resolves which one to use per call:

1. an explicit ``backend=`` argument,
2. a programmatic :func:`set_backend` override (tests, benchmarks),
3. the ``REPRO_KERNELS`` environment variable,
4. the default — ``numpy``, the permanent oracle.

Resolution is repeated on every dispatch, so worker processes (which
inherit the environment) and mid-session env changes both behave as
expected.  Requesting a backend that is unknown or unavailable (e.g.
``numba`` without numba installed) falls back to the numpy oracle with
a one-time warning — selection can degrade, results cannot: every
backend is bit-identical to the oracle by contract.

The registry also counts dispatches per backend; the flat
:func:`kernel_metrics` snapshot is registered as the ``"kernels"``
metrics provider on every algorithm, surfacing which backend actually
ran in ``JoinStatistics.index_counters`` / ``StepRecord.index_counters``
(per-step bench rows record it too).  Counters are process-local:
kernels dispatched inside pool workers count in the worker, not the
parent — the parent-side metric still records the resolved backend name.
"""

from __future__ import annotations

import os
import warnings

from typing import Any, Callable

from repro.geometry.kernels import numpy_backend
from repro.geometry.kernels.numba_backend import (
    make_numba_kernels,
    make_python_kernels,
    numba_available,
)
from repro.geometry.kernels.spec import kernel_names

__all__ = [
    "KERNELS_ENV_VAR",
    "DEFAULT_BACKEND",
    "BackendUnavailable",
    "register_backend",
    "registered_backends",
    "available_backends",
    "resolve_backend_name",
    "set_backend",
    "get_kernels",
    "kernel_metrics",
    "reset_kernel_metrics",
]

#: Environment variable selecting the kernel backend for a run.
KERNELS_ENV_VAR = "REPRO_KERNELS"
#: The permanent oracle; always registered, always available.
DEFAULT_BACKEND = "numpy"

#: One verify-kernel backend: kernel name → callable.
KernelTable = dict[str, Callable[..., Any]]


class BackendUnavailable(RuntimeError):
    """Raised by a backend factory whose dependencies are missing."""


_factories: dict[str, Callable[[], KernelTable]] = {}
_probes: dict[str, Callable[[], bool]] = {}
_tables: dict[str, KernelTable] = {}
_override: str | None = None
_warned: set[str] = set()
_calls: dict[str, int] = {}
_fallbacks = 0


def register_backend(
    name: str,
    factory: Callable[[], KernelTable],
    probe: Callable[[], bool] | None = None,
) -> None:
    """Register a backend ``factory`` under ``name``.

    ``factory`` builds the kernel table (it may raise
    :class:`BackendUnavailable`); the optional ``probe`` is a cheap
    availability check consulted before the factory runs, so listing
    available backends never triggers imports or JIT compilation.
    """
    if name in _factories:
        raise ValueError(f"kernel backend {name!r} already registered")
    _factories[name] = factory
    if probe is not None:
        _probes[name] = probe


def registered_backends() -> tuple[str, ...]:
    """All registered backend names, in registration order."""
    return tuple(_factories)


def available_backends() -> tuple[str, ...]:
    """Registered backends whose availability probe passes."""
    return tuple(
        name for name in _factories if _probes.get(name, lambda: True)()
    )


def _fall_back(requested: str, reason: str) -> str:
    global _fallbacks
    if requested not in _warned:
        _warned.add(requested)
        warnings.warn(
            f"kernel backend {requested!r} {reason}; "
            f"falling back to the {DEFAULT_BACKEND!r} oracle",
            RuntimeWarning,
            stacklevel=3,
        )
    _fallbacks += 1
    return DEFAULT_BACKEND


def resolve_backend_name(name: str | None = None) -> str:
    """Resolve the backend for one dispatch (see module docstring)."""
    requested = name or _override or os.environ.get(KERNELS_ENV_VAR) or DEFAULT_BACKEND
    if requested not in _factories:
        return _fall_back(requested, "is not registered")
    if not _probes.get(requested, lambda: True)():
        return _fall_back(requested, "is not available in this environment")
    return requested


def set_backend(name: str | None) -> str | None:
    """Set (or with ``None`` clear) the process-wide backend override.

    Returns the previous override so tests can restore it.  The override
    outranks ``REPRO_KERNELS`` but not an explicit ``backend=`` argument.
    """
    global _override
    previous = _override
    _override = name
    return previous


def get_kernels(name: str | None = None) -> tuple[str, KernelTable]:
    """Resolve, build (once) and validate a backend's kernel table."""
    resolved = resolve_backend_name(name)
    table = _tables.get(resolved)
    if table is None:
        try:
            table = _factories[resolved]()
        except (BackendUnavailable, ImportError):
            if resolved == DEFAULT_BACKEND:
                raise
            resolved = _fall_back(resolved, "failed to initialise")
            return get_kernels(resolved)
        missing = [k for k in kernel_names() if k not in table]
        if missing:
            raise BackendUnavailable(
                f"kernel backend {resolved!r} is missing kernels: {missing}"
            )
        _tables[resolved] = table
    return resolved, table


def dispatch(kernel: str, backend: str | None, *args: Any, **kwargs: Any) -> Any:
    """Run ``kernel`` on the resolved backend, counting the dispatch."""
    resolved, table = get_kernels(backend)
    _calls[resolved] = _calls.get(resolved, 0) + 1
    return table[kernel](*args, **kwargs)


def kernel_metrics() -> dict[str, Any]:
    """Flat snapshot for the ``"kernels"`` metrics provider.

    ``backend`` is the name the next dispatch would resolve to;
    ``*_calls`` are lifetime dispatch counts per backend in this
    process; ``fallbacks`` counts dispatches that degraded to the
    oracle because the requested backend was unknown or unavailable.
    """
    values: dict[str, Any] = {"backend": resolve_backend_name()}
    for name in _factories:
        count = _calls.get(name, 0)
        if count:
            values[f"{name}_calls"] = count
    values["fallbacks"] = _fallbacks
    return values


def reset_kernel_metrics() -> None:
    """Zero the dispatch counters (test isolation helper)."""
    global _fallbacks
    _calls.clear()
    _fallbacks = 0
    _warned.clear()


def _numpy_table() -> KernelTable:
    return {name: getattr(numpy_backend, name) for name in kernel_names()}


register_backend("numpy", _numpy_table)
register_backend("numba", make_numba_kernels, probe=numba_available)
register_backend("python", make_python_kernels)
