"""Unit tests for the Morton space-filling-curve encoding."""

from __future__ import annotations

import numpy as np
import pytest

from repro.geometry.morton import MORTON_COORD_BITS, morton_decode, morton_encode


class TestRoundtrip:
    def test_small_coordinates(self):
        coords = np.array([[0, 0, 0], [1, 2, 3], [7, 7, 7]], dtype=np.int64)
        assert np.array_equal(morton_decode(morton_encode(coords)), coords)

    def test_random_coordinates(self):
        rng = np.random.default_rng(0)
        coords = rng.integers(0, 1 << MORTON_COORD_BITS, size=(500, 3))
        assert np.array_equal(morton_decode(morton_encode(coords)), coords)

    def test_extreme_coordinates(self):
        top = (1 << MORTON_COORD_BITS) - 1
        coords = np.array([[top, top, top], [top, 0, 0], [0, top, 0]], dtype=np.int64)
        assert np.array_equal(morton_decode(morton_encode(coords)), coords)


class TestEncoding:
    def test_keys_are_unique(self):
        rng = np.random.default_rng(1)
        coords = np.unique(rng.integers(0, 1000, size=(800, 3)), axis=0)
        keys = morton_encode(coords)
        assert np.unique(keys).size == coords.shape[0]

    def test_unit_axes_interleave(self):
        # Bit interleaving: x occupies bit 0, y bit 1, z bit 2.
        assert morton_encode(np.array([[1, 0, 0]]))[0] == 1
        assert morton_encode(np.array([[0, 1, 0]]))[0] == 2
        assert morton_encode(np.array([[0, 0, 1]]))[0] == 4

    def test_locality_of_curve(self):
        # Coordinates inside one octant share their high key bits with
        # the octant: the key of (x, y, z) and (x+1, y, z) within an
        # aligned block differ less than across distant blocks.
        near_a = morton_encode(np.array([[4, 4, 4]]))[0]
        near_b = morton_encode(np.array([[5, 4, 4]]))[0]
        far = morton_encode(np.array([[1000, 1000, 1000]]))[0]
        assert abs(int(near_a) - int(near_b)) < abs(int(near_a) - int(far))

    def test_negative_coordinates_rejected(self):
        with pytest.raises(ValueError):
            morton_encode(np.array([[-1, 0, 0]]))

    def test_oversized_coordinates_rejected(self):
        with pytest.raises(ValueError):
            morton_encode(np.array([[1 << MORTON_COORD_BITS, 0, 0]]))

    def test_wrong_shape_rejected(self):
        with pytest.raises(ValueError):
            morton_encode(np.array([1, 2, 3]))

    def test_keys_sorted_like_z_order(self):
        # Within a 2x2x2 block the canonical Z-order visits (0,0,0),
        # (1,0,0), (0,1,0), (1,1,0), (0,0,1), ...
        block = np.array(
            [[0, 0, 0], [1, 0, 0], [0, 1, 0], [1, 1, 0],
             [0, 0, 1], [1, 0, 1], [0, 1, 1], [1, 1, 1]],
            dtype=np.int64,
        )
        keys = morton_encode(block)
        assert keys.tolist() == list(range(8))
