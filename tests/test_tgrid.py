"""Unit tests for the batched T-Grid planner (repro.core.tgrid)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import PGrid, TGrid
from repro.datasets import SpatialDataset
from repro.geometry import PairAccumulator, mbr, pack_pairs, unique_pairs


def build_cells(dataset, resolution=2.0):
    """Build a coarse P-Grid and return its multi-member cells."""
    lo, _hi = dataset.boxes()
    grid = PGrid(resolution * dataset.max_width, dataset.bounds[0])
    grid.refresh(dataset.centers, lo[:, 0], dataset.widths, dataset.max_width)
    return [cell for cell in grid.occupied if cell.object_idx.size > 1]


def naive_internal_pairs(dataset, cells):
    """Oracle: all overlapping pairs *within* each cell."""
    lo, hi = dataset.boxes()
    expected = set()
    for cell in cells:
        members = cell.object_idx
        for a in range(members.size):
            for b in range(a + 1, members.size):
                i, j = int(members[a]), int(members[b])
                if mbr.overlap_single(lo[i], hi[i], lo[j], hi[j]):
                    expected.add((min(i, j), max(i, j)))
    return expected


def varied_dataset(n=300, seed=0, width_low=2.0, width_high=9.0, side=60.0):
    rng = np.random.default_rng(seed)
    centers = rng.uniform(0, side, size=(n, 3))
    widths = rng.uniform(width_low, width_high, size=(n, 3))
    return SpatialDataset(centers, widths, bounds=(np.zeros(3), np.full(3, side)))


class TestJoinCells:
    def test_matches_naive_within_cell_join(self):
        dataset = varied_dataset(seed=1)
        cells = build_cells(dataset)
        assert cells, "fixture produced no multi-member cells"
        lo, hi = dataset.boxes()
        acc = PairAccumulator()
        TGrid().join_cells(cells, lo, hi, dataset.centers, dataset.widths, acc)
        n = len(dataset)
        got = set(zip(*(a.tolist() for a in unique_pairs(*acc.as_arrays(), n)), strict=True))
        assert got == naive_internal_pairs(dataset, cells)

    def test_no_duplicate_emissions(self):
        dataset = varied_dataset(seed=2)
        cells = build_cells(dataset)
        lo, hi = dataset.boxes()
        acc = PairAccumulator()
        TGrid().join_cells(cells, lo, hi, dataset.centers, dataset.widths, acc)
        i_idx, j_idx = acc.as_arrays()
        n = len(dataset)
        keys = pack_pairs(i_idx, j_idx, n)
        assert np.unique(keys).size == keys.size

    def test_fallback_on_degenerate_resolution(self):
        # One minuscule object among giants would demand a huge T-Grid;
        # the budget forces the sweep fallback, results stay exact.
        rng = np.random.default_rng(3)
        centers = rng.uniform(20.0, 30.0, size=(40, 3))
        widths = np.full((40, 3), 20.0)
        widths[0] = 0.01
        dataset = SpatialDataset(
            centers, widths, bounds=(np.zeros(3), np.full(3, 50.0))
        )
        cells = build_cells(dataset, resolution=2.0)
        lo, hi = dataset.boxes()
        tgrid = TGrid(max_cells_per_object=4)
        acc = PairAccumulator()
        tgrid.join_cells(cells, lo, hi, dataset.centers, dataset.widths, acc)
        assert tgrid.fallbacks > 0
        n = len(dataset)
        got = set(zip(*(a.tolist() for a in unique_pairs(*acc.as_arrays(), n)), strict=True))
        assert got == naive_internal_pairs(dataset, cells)

    def test_peak_cells_tracked(self):
        dataset = varied_dataset(seed=4)
        cells = build_cells(dataset)
        lo, hi = dataset.boxes()
        tgrid = TGrid()
        tgrid.join_cells(cells, lo, hi, dataset.centers, dataset.widths, acc := PairAccumulator())
        assert tgrid.peak_cells > 0
        assert len(acc) >= 0

    def test_single_member_cells_skipped(self):
        dataset = varied_dataset(n=12, seed=5, side=200.0)
        lo, _hi = dataset.boxes()
        grid = PGrid(2.0 * dataset.max_width, dataset.bounds[0])
        grid.refresh(dataset.centers, lo[:, 0], dataset.widths, dataset.max_width)
        lo, hi = dataset.boxes()
        acc = PairAccumulator()
        tests, shortcuts = TGrid().join_cells(
            grid.occupied, lo, hi, dataset.centers, dataset.widths, acc
        )
        # Sparse layout: nothing shares a cell, nothing to join.
        expected = naive_internal_pairs(dataset, grid.occupied)
        n = len(dataset)
        got = set(zip(*(a.tolist() for a in unique_pairs(*acc.as_arrays(), n)), strict=True))
        assert got == expected

    def test_budget_validation(self):
        with pytest.raises(ValueError):
            TGrid(max_cells_per_object=0)

    def test_counts_are_deterministic(self):
        dataset = varied_dataset(seed=6)
        cells = build_cells(dataset)
        lo, hi = dataset.boxes()
        runs = []
        for _ in range(2):
            acc = PairAccumulator(count_only=True)
            runs.append(
                TGrid().join_cells(
                    cells, lo, hi, dataset.centers, dataset.widths, acc
                )
            )
        assert runs[0] == runs[1]
