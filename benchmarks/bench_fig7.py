"""Benchmark for Figure 7 — per-step join over the neural simulation.

Times one full simulation step (index refresh/rebuild + join) per
competitor on the moving neural workload and asserts the figure's two
headline facts: THERMAL-JOIN posts the fastest step time and by far the
fewest overlap tests (panels b and c).
"""

from __future__ import annotations

import pytest

from repro.experiments.figures import ALGORITHM_FACTORIES, FIG7_ALGORITHMS
from repro.experiments.workloads import scaled_neural

from conftest import NEURAL_N


@pytest.mark.parametrize("name", FIG7_ALGORITHMS)
def test_fig7_simulation_step(benchmark, name):
    """One moving-workload step per competitor (motion advances between
    benchmark rounds, so incremental maintenance is exercised)."""
    dataset, motion, _labels = scaled_neural(NEURAL_N, seed=201)
    algorithm = ALGORITHM_FACTORIES[name]()

    def step():
        result = algorithm.step(dataset)
        motion.step(dataset)
        return result

    result = benchmark(step)
    assert result.n_results > 0


def test_fig7_thermal_fewest_overlap_tests():
    """Panel (c): THERMAL-JOIN performs the fewest overlap tests of the
    field — at least half fewer than every tree-based competitor, and
    strictly fewer than the flat-grid EGO (whose per-cell nested loops
    pay the in-cell pairs THERMAL's hot spots get for free)."""
    tests = {}
    for name in FIG7_ALGORITHMS:
        dataset, motion, _labels = scaled_neural(NEURAL_N, seed=202)
        algorithm = ALGORITHM_FACTORIES[name]()
        total = 0
        for _ in range(3):
            total += algorithm.step(dataset).stats.overlap_tests
            motion.step(dataset)
        tests[name] = total
    thermal = tests.pop("thermal-join")
    for name, competitor_tests in tests.items():
        assert thermal < competitor_tests, (
            f"{name} performed only {competitor_tests} tests vs thermal {thermal}"
        )
    for name in ("cr-tree", "loose-octree"):
        assert thermal < tests[name] / 2


def test_fig7_results_identical_across_methods():
    """All methods compute the same join (panel (a) series coincide)."""
    counts = set()
    for name in FIG7_ALGORITHMS:
        dataset, _motion, _labels = scaled_neural(NEURAL_N, seed=203)
        counts.add(ALGORITHM_FACTORIES[name]().step(dataset).n_results)
    assert len(counts) == 1
