"""Index substrates: B+-Tree (for the ST2B-style moving-object join)."""

from repro.index.bptree import BPlusTree

__all__ = ["BPlusTree"]
