"""Benchmark for Figure 6 — the convex cost function F_t(r).

Times THERMAL-JOIN at fixed resolutions over the uniform benchmark and
asserts the convexity the hill climber relies on: the extremes of the
sweep are slower than the sweet spot.
"""

from __future__ import annotations

import pytest

from repro.core import ThermalJoin

RESOLUTIONS = [0.3, 0.5, 1.0, 1.5, 2.0]


@pytest.mark.parametrize("resolution", RESOLUTIONS)
def test_fig6_resolution(benchmark, uniform_dataset, resolution):
    """One static THERMAL-JOIN at each resolution of the sweep."""
    join = ThermalJoin(resolution=resolution, count_only=True)

    result = benchmark(lambda: join.step(uniform_dataset))
    assert result.n_results > 0


def test_fig6_cost_is_convexish(uniform_dataset):
    """Operation counts (machine-independent) dip in the middle of the
    sweep: both a very fine and a very coarse P-Grid cost more."""
    costs = {}
    for r in (0.2, 0.5, 2.0):
        join = ThermalJoin(resolution=r, count_only=True)
        result = join.step(uniform_dataset)
        costs[r] = join._operations_cost(result)
    assert costs[0.5] < costs[0.2]
    assert costs[0.5] < costs[2.0]
