"""Benchmark for the self-tuning behaviour (§4.3.2, §5.1.2).

Times the tuned steady state against a deliberately bad fixed resolution
and asserts the paper's tuning claims: quick convergence (6–8 steps at
the 10 % threshold) and no need for a parameter sweep.
"""

from __future__ import annotations

from repro.core import ThermalJoin
from repro.experiments.workloads import scaled_neural

from conftest import NEURAL_N


def test_tuned_steady_state_step(benchmark):
    """Per-step time after the tuner has converged."""
    dataset, motion, _labels = scaled_neural(NEURAL_N, seed=601)
    join = ThermalJoin(cost_model="operations")
    for _ in range(12):  # warm up: let the tuner converge
        join.step(dataset)
        motion.step(dataset)

    def step():
        result = join.step(dataset)
        motion.step(dataset)
        return result

    result = benchmark(step)
    assert result.n_results > 0


def test_convergence_within_paper_budget():
    """Hill climbing settles in a handful of steps (paper: 6–8)."""
    dataset, motion, _labels = scaled_neural(NEURAL_N, seed=602)
    join = ThermalJoin(cost_model="operations")
    for _ in range(15):
        join.step(dataset)
        motion.step(dataset)
        if join.tuner.converged:
            break
    assert join.tuner.converged
    assert join.tuner.tuning_steps <= 12


def test_tuned_beats_bad_fixed_resolution():
    """Self-tuning removes the configuration burden: the converged grid
    is no slower (in machine-independent operations) than a deliberately
    mis-configured fine grid."""
    dataset, motion, _labels = scaled_neural(NEURAL_N, seed=603)
    tuned = ThermalJoin(cost_model="operations")
    for _ in range(12):
        tuned_result = tuned.step(dataset)
        motion.step(dataset)
    tuned_cost = tuned._operations_cost(tuned_result)

    bad = ThermalJoin(resolution=0.25, count_only=True)
    bad_result = bad.step(dataset)
    bad_cost = bad._operations_cost(bad_result)
    assert tuned_cost < bad_cost
