"""Smoke tests: every example script runs end to end (shrunken sizes).

Each example module is loaded from ``examples/``, its workload-size
constants are patched down, and its ``main()`` is executed — so the
examples shown in the README cannot silently rot.
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"

#: module -> constants to shrink for the smoke run.
EXAMPLES = {
    "quickstart": {},
    "neural_simulation": {"N_OBJECTS": 800, "N_STEPS": 2},
    "nbody_simulation": {"N_BODIES": 400, "N_STEPS": 4},
    "game_visibility": {"N_PLAYERS": 400, "N_TICKS": 3},
    "sph_fluid": {"N_PARTICLES": 500, "N_STEPS": 3},
    "molecular_lj": {"N_ATOMS": 400, "N_STEPS": 4},
    "tuning_demo": {},
}


def load_example(name):
    spec = importlib.util.spec_from_file_location(
        f"example_{name}", EXAMPLES_DIR / f"{name}.py"
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


@pytest.mark.parametrize("name", sorted(EXAMPLES))
def test_example_runs(name, capsys, monkeypatch):
    module = load_example(name)
    for constant, value in EXAMPLES[name].items():
        assert hasattr(module, constant), f"{name} lost constant {constant}"
        monkeypatch.setattr(module, constant, value)
    if name == "quickstart":
        # Shrink the inline workload through the library call instead.
        import repro

        original = repro.make_uniform_workload

        def small_workload(n, **kwargs):
            return original(1500, **kwargs)

        monkeypatch.setattr(repro, "make_uniform_workload", small_workload)
        monkeypatch.setattr(module, "make_uniform_workload", small_workload)
    if name == "tuning_demo":
        from repro import make_uniform_workload as original

        def small_workload(n, **kwargs):
            return original(1200, **kwargs)

        monkeypatch.setattr(module, "make_uniform_workload", small_workload)
    module.main()
    out = capsys.readouterr().out
    assert out.strip(), f"{name} produced no output"


def test_every_example_file_is_covered():
    on_disk = {path.stem for path in EXAMPLES_DIR.glob("*.py")}
    assert on_disk == set(EXAMPLES)
