"""Morton (Z-order) space-filling-curve encoding for 3-D grid cells.

The ST2B-Tree (Chen et al. [7]) maps moving objects onto a uniform grid
and indexes the cells in a B+-Tree keyed by a space-filling curve; the
curve keeps spatially adjacent cells close in key space so range scans
touch few leaves.  This module provides the 3-D Morton encoding used by
that baseline: 21 bits per coordinate interleaved into one ``int64``.
"""

from __future__ import annotations

import numpy as np

__all__ = ["morton_encode", "morton_decode", "MORTON_COORD_BITS"]

#: Bits per coordinate (3 x 21 = 63 bits fit an int64).
MORTON_COORD_BITS = 21
_MASK = (1 << MORTON_COORD_BITS) - 1


def _spread_bits(values: np.ndarray) -> np.ndarray:
    """Spread each 21-bit integer so its bits occupy every third position.

    Classic magic-number bit spreading, vectorised over int64 arrays.
    """
    x = values & np.int64(_MASK)
    x = (x | (x << 32)) & np.int64(0x1F00000000FFFF)
    x = (x | (x << 16)) & np.int64(0x1F0000FF0000FF)
    x = (x | (x << 8)) & np.int64(0x100F00F00F00F00F)
    x = (x | (x << 4)) & np.int64(0x10C30C30C30C30C3)
    x = (x | (x << 2)) & np.int64(0x1249249249249249)
    return x


def _compact_bits(values: np.ndarray) -> np.ndarray:
    """Inverse of :func:`_spread_bits`."""
    x = values & np.int64(0x1249249249249249)
    x = (x | (x >> 2)) & np.int64(0x10C30C30C30C30C3)
    x = (x | (x >> 4)) & np.int64(0x100F00F00F00F00F)
    x = (x | (x >> 8)) & np.int64(0x1F0000FF0000FF)
    x = (x | (x >> 16)) & np.int64(0x1F00000000FFFF)
    x = (x | (x >> 32)) & np.int64(_MASK)
    return x


def morton_encode(coords: np.ndarray) -> np.ndarray:
    """Encode non-negative grid coordinates ``(n, 3)`` into Morton keys."""
    coords = np.asarray(coords, dtype=np.int64)
    if coords.ndim != 2 or coords.shape[1] != 3:
        raise ValueError(f"coords must have shape (n, 3), got {coords.shape}")
    if coords.size and (coords.min() < 0 or coords.max() > _MASK):
        raise ValueError(
            f"coordinates must lie in [0, 2^{MORTON_COORD_BITS}), got "
            f"[{coords.min()}, {coords.max()}]"
        )
    return (
        _spread_bits(coords[:, 0])
        | (_spread_bits(coords[:, 1]) << 1)
        | (_spread_bits(coords[:, 2]) << 2)
    )


def morton_decode(keys: np.ndarray) -> np.ndarray:
    """Decode Morton keys back into ``(n, 3)`` grid coordinates."""
    keys = np.asarray(keys, dtype=np.int64)
    return np.stack(
        [
            _compact_bits(keys),
            _compact_bits(keys >> 1),
            _compact_bits(keys >> 2),
        ],
        axis=1,
    )
