"""Unit tests for the P-Grid (build, maintenance, GC, hyperlinks)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import PGrid
from repro.core.cells import pack_cell_id_scalar
from repro.datasets import make_uniform_dataset


def refresh_grid(grid, dataset):
    lo, _hi = dataset.boxes()
    return grid.refresh(
        dataset.centers, lo[:, 0], dataset.widths, dataset.max_width
    )


def small_dataset(n=200, width=10.0, side=100.0, seed=0):
    return make_uniform_dataset(
        n, width=width, bounds=(np.zeros(3), np.full(3, side)), seed=seed
    )


class TestConstruction:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            PGrid(0.0, np.zeros(3))
        with pytest.raises(ValueError):
            PGrid(1.0, np.zeros(3), gc_threshold=0.0)
        with pytest.raises(ValueError):
            PGrid(1.0, np.zeros(2))

    def test_required_layers(self):
        grid = PGrid(10.0, np.zeros(3))
        assert grid.required_layers(10.0) == 1  # r = 1 -> one layer
        assert grid.required_layers(5.0) == 1  # coarser than objects
        assert grid.required_layers(20.0) == 2  # r = 0.5 -> two layers
        assert grid.required_layers(25.0) == 3


class TestBuild:
    def test_every_object_assigned_once(self):
        ds = small_dataset(300)
        grid = PGrid(10.0, np.zeros(3))
        occupied = refresh_grid(grid, ds)
        seen = np.concatenate([cell.object_idx for cell in occupied])
        assert np.array_equal(np.sort(seen), np.arange(300))

    def test_objects_assigned_by_center(self):
        ds = small_dataset(300)
        grid = PGrid(10.0, np.zeros(3))
        occupied = refresh_grid(grid, ds)
        for cell in occupied:
            centers = ds.centers[cell.object_idx]
            assert (centers >= cell.lo).all()
            assert (centers < cell.hi).all()

    def test_object_lists_sorted_by_x_lo(self):
        ds = small_dataset(500)
        grid = PGrid(10.0, np.zeros(3))
        lo, _hi = ds.boxes()
        for cell in refresh_grid(grid, ds):
            xlo = lo[cell.object_idx, 0]
            assert (np.diff(xlo) >= 0).all()

    def test_only_nonempty_cells_materialized(self):
        ds = small_dataset(10, side=1000.0)
        grid = PGrid(10.0, np.zeros(3))
        refresh_grid(grid, ds)
        assert len(grid.cells) <= 10  # far fewer than the 100^3 virtual cells

    def test_cell_metadata(self):
        ds = make_uniform_dataset(
            300,
            width_range=(5.0, 15.0),
            bounds=(np.zeros(3), np.full(3, 80.0)),
            seed=1,
        )
        grid = PGrid(15.0, np.zeros(3))
        for cell in refresh_grid(grid, ds):
            widths = ds.widths[cell.object_idx]
            centers = ds.centers[cell.object_idx]
            assert np.allclose(cell.min_obj_width, widths.min(axis=0))
            assert np.allclose(cell.max_obj_width, widths.max(axis=0))
            assert np.allclose(cell.center_lo, centers.min(axis=0))
            assert np.allclose(cell.center_hi, centers.max(axis=0))

    def test_slots_align_with_occupied_list(self):
        ds = small_dataset(200)
        grid = PGrid(10.0, np.zeros(3))
        occupied = refresh_grid(grid, ds)
        for slot, cell in enumerate(occupied):
            assert cell.slot == slot
            start = grid.cell_starts[slot]
            stop = grid.cell_stops[slot]
            assert np.array_equal(grid.cat[start:stop], cell.object_idx)


class TestHyperlinks:
    def test_each_adjacent_pair_linked_exactly_once(self):
        ds = small_dataset(400, width=10.0, side=60.0)
        grid = PGrid(10.0, np.zeros(3))
        refresh_grid(grid, ds)
        linked = set()
        for cell_id, cell in grid.cells.items():
            for neighbor in cell.hyperlinks:
                key = frozenset((cell_id, pack_cell_id_scalar(*neighbor.coords)))
                assert key not in linked, "cell pair linked twice"
                linked.add(key)
        # Every adjacent occupied pair must be covered.
        for cell_id, cell in grid.cells.items():
            cx, cy, cz = cell.coords
            for other_id, other in grid.cells.items():
                if other_id <= cell_id:
                    continue
                ox, oy, oz = other.coords
                if max(abs(cx - ox), abs(cy - oy), abs(cz - oz)) <= grid.layers:
                    assert frozenset((cell_id, other_id)) in linked

    def test_links_point_to_adjacent_cells_only(self):
        ds = small_dataset(300, width=10.0, side=80.0)
        grid = PGrid(10.0, np.zeros(3))
        refresh_grid(grid, ds)
        for cell in grid.cells.values():
            for neighbor in cell.hyperlinks:
                delta = np.abs(np.subtract(cell.coords, neighbor.coords))
                assert delta.max() <= grid.layers

    def test_multiple_layers_when_cells_finer_than_objects(self):
        ds = small_dataset(300, width=20.0, side=80.0)
        grid = PGrid(10.0, np.zeros(3))  # cell width = half the object width
        refresh_grid(grid, ds)
        assert grid.layers == 2

    def test_incremental_new_cells_get_links(self):
        ds = small_dataset(300, width=10.0, side=60.0, seed=2)
        grid = PGrid(10.0, np.zeros(3))
        refresh_grid(grid, ds)
        # Move everything, creating new cells next to old ones.
        ds.translate(np.full((300, 3), 7.0))
        refresh_grid(grid, ds)
        linked = set()
        for cell_id, cell in grid.cells.items():
            for neighbor in cell.hyperlinks:
                key = frozenset((cell_id, pack_cell_id_scalar(*neighbor.coords)))
                assert key not in linked
                linked.add(key)
        for cell_id, cell in grid.cells.items():
            cx, cy, cz = cell.coords
            for other_id, other in grid.cells.items():
                if other_id <= cell_id:
                    continue
                ox, oy, oz = other.coords
                if max(abs(cx - ox), abs(cy - oy), abs(cz - oz)) <= grid.layers:
                    assert frozenset((cell_id, other_id)) in linked


class TestIncrementalMaintenance:
    def test_cells_recycled_when_objects_stay(self):
        ds = small_dataset(300)
        grid = PGrid(10.0, np.zeros(3))
        refresh_grid(grid, ds)
        created_first = grid.cells_created
        refresh_grid(grid, ds)  # same positions: all cells recycled
        assert grid.cells_created == created_first
        assert grid.cells_recycled >= created_first

    def test_vacated_cells_kept_and_aged(self):
        ds = small_dataset(50, width=5.0, side=30.0, seed=3)
        grid = PGrid(5.0, np.zeros(3), gc_threshold=0.99)
        refresh_grid(grid, ds)
        n_before = len(grid.cells)
        ds.translate(np.full((50, 3), 11.0))  # everyone moves 2+ cells
        refresh_grid(grid, ds)
        assert grid.n_vacant > 0
        assert len(grid.cells) >= n_before  # vacants kept (GC off)
        ages = [cell.age for cell in grid.cells.values() if cell.is_vacant]
        assert all(age >= 1 for age in ages)

    def test_vacant_cell_reused_on_return(self):
        ds = small_dataset(50, width=5.0, side=30.0, seed=4)
        grid = PGrid(5.0, np.zeros(3), gc_threshold=0.99)
        refresh_grid(grid, ds)
        ids_before = set(grid.cells)
        shift = np.full((50, 3), 11.0)
        ds.translate(shift)
        refresh_grid(grid, ds)
        created_mid = grid.cells_created
        ds.translate(-shift)  # everyone returns home
        refresh_grid(grid, ds)
        assert grid.cells_created == created_mid  # nothing new created
        assert set(grid.cells) >= ids_before

    def test_layer_change_forces_rebuild(self):
        ds = small_dataset(100, width=10.0)
        grid = PGrid(10.0, np.zeros(3))
        refresh_grid(grid, ds)
        assert grid.layers == 1
        lo, _hi = ds.boxes()
        # Same grid, but objects now twice as wide: two layers needed.
        wide = np.full_like(ds.widths, 20.0)
        grid.refresh(ds.centers, lo[:, 0], wide, 20.0)
        assert grid.layers == 2


class TestGarbageCollection:
    def _scatter(self, grid, ds, repeats):
        rng = np.random.default_rng(9)
        for _ in range(repeats):
            ds.update_positions(rng.uniform(0, 30.0, size=ds.centers.shape))
            refresh_grid(grid, ds)

    def test_triggered_above_threshold(self):
        ds = small_dataset(30, width=5.0, side=30.0, seed=5)
        grid = PGrid(5.0, np.zeros(3), gc_threshold=0.35)
        self._scatter(grid, ds, 10)
        total = len(grid.cells)
        assert grid.n_vacant <= 0.35 * total + 1
        assert grid.gc_runs > 0

    def test_gc_dissolves_stale_hyperlinks(self):
        ds = small_dataset(30, width=5.0, side=30.0, seed=6)
        grid = PGrid(5.0, np.zeros(3), gc_threshold=0.35)
        self._scatter(grid, ds, 10)
        live = set(map(id, grid.cells.values()))
        for cell in grid.cells.values():
            for neighbor in cell.hyperlinks:
                assert id(neighbor) in live

    def test_high_threshold_never_collects(self):
        ds = small_dataset(30, width=5.0, side=30.0, seed=7)
        grid = PGrid(5.0, np.zeros(3), gc_threshold=1.0)
        self._scatter(grid, ds, 6)
        assert grid.gc_runs == 0


class TestFootprint:
    def test_footprint_grows_with_cells(self):
        small = small_dataset(50, side=50.0)
        large = small_dataset(1000, side=200.0)
        grid_s = PGrid(10.0, np.zeros(3))
        grid_l = PGrid(10.0, np.zeros(3))
        refresh_grid(grid_s, small)
        refresh_grid(grid_l, large)
        assert grid_l.memory_footprint() > grid_s.memory_footprint()

    def test_empty_grid_has_zero_footprint(self):
        assert PGrid(10.0, np.zeros(3)).memory_footprint() == 0

    def test_finer_grid_uses_more_memory(self):
        ds = small_dataset(500, width=10.0, side=100.0)
        coarse = PGrid(10.0, np.zeros(3))
        fine = PGrid(3.0, np.zeros(3))
        refresh_grid(coarse, ds)
        refresh_grid(fine, ds)
        assert fine.memory_footprint() > coarse.memory_footprint()


def brute_force_footprint(grid):
    """Recompute the footprint by walking every cell (the pre-incremental
    definition); the O(1) incremental version must match it exactly."""
    from repro.core.pgrid import CELL_RECORD_BYTES, _bucket_count
    from repro.joins.base import POINTER_BYTES

    n_cells = len(grid.cells)
    if n_cells == 0:
        return 0
    total = _bucket_count(n_cells) * POINTER_BYTES
    total += n_cells * CELL_RECORD_BYTES
    for cell in grid.cells.values():
        if cell.object_idx is not None:
            total += cell.object_idx.size * POINTER_BYTES
        total += len(cell.hyperlinks) * POINTER_BYTES
    return total


class TestIncrementalAccounting:
    """The vacant-cell set and O(1) footprint must track the cell walk."""

    def _drift(self, grid, ds, steps, seed=13):
        rng = np.random.default_rng(seed)
        for _ in range(steps):
            ds.update_positions(rng.uniform(0, 30.0, size=ds.centers.shape))
            refresh_grid(grid, ds)
            yield

    def test_footprint_matches_brute_force_across_steps(self):
        ds = small_dataset(40, width=5.0, side=30.0, seed=11)
        grid = PGrid(5.0, np.zeros(3), gc_threshold=0.35)
        for _ in self._drift(grid, ds, 12):
            assert grid.memory_footprint() == brute_force_footprint(grid)
        assert grid.gc_runs > 0  # the equivalence held across GC too

    def test_footprint_matches_without_gc(self):
        ds = small_dataset(40, width=5.0, side=30.0, seed=12)
        grid = PGrid(5.0, np.zeros(3), gc_threshold=1.0)
        for _ in self._drift(grid, ds, 8):
            assert grid.memory_footprint() == brute_force_footprint(grid)
        assert grid.n_vacant > 0  # vacants accumulated, still exact

    def test_vacant_set_matches_cell_walk(self):
        ds = small_dataset(40, width=5.0, side=30.0, seed=14)
        grid = PGrid(5.0, np.zeros(3), gc_threshold=0.35)
        for _ in self._drift(grid, ds, 10):
            walked = {
                cell_id for cell_id, cell in grid.cells.items() if cell.is_vacant
            }
            assert set(grid._vacant_cells) == walked
            assert grid.n_vacant == len(walked)

    def test_vacant_ages_advance_without_per_cell_touch(self):
        ds = small_dataset(50, width=5.0, side=30.0, seed=15)
        grid = PGrid(5.0, np.zeros(3), gc_threshold=0.99)
        refresh_grid(grid, ds)
        shift = np.full((50, 3), 11.0)
        ds.translate(shift)
        refresh_grid(grid, ds)
        first = {id(c): c.age for c in grid.cells.values() if c.is_vacant}
        assert first and all(age == 1 for age in first.values())
        ds.translate(shift)
        refresh_grid(grid, ds)
        for cell in grid.cells.values():
            if id(cell) in first and cell.is_vacant:
                assert cell.age == first[id(cell)] + 1


class TestClear:
    def test_clear_resets_batched_arrays(self):
        # Regression: clear() dropped the cell table but left the stacked
        # per-occupied-cell arrays of the dead generation behind; a
        # batched consumer could read assignments for cells that no
        # longer exist.
        ds = small_dataset(200)
        grid = PGrid(10.0, np.zeros(3))
        refresh_grid(grid, ds)
        assert grid.cat is not None
        grid.clear()
        for name in (
            "cat",
            "cell_starts",
            "cell_stops",
            "cell_min_width",
            "cell_max_width",
            "cell_center_lo",
            "cell_center_hi",
        ):
            assert getattr(grid, name) is None, name
        assert grid.cells == {}
        assert grid.occupied == []
        assert grid.n_vacant == 0
        assert grid.memory_footprint() == 0

    def test_rebuild_after_clear_is_consistent(self):
        ds = small_dataset(200)
        grid = PGrid(10.0, np.zeros(3))
        refresh_grid(grid, ds)
        before = grid.memory_footprint()
        grid.clear()
        refresh_grid(grid, ds)
        assert grid.memory_footprint() == before
        assert grid.memory_footprint() == brute_force_footprint(grid)
