"""Shared fixtures for the pytest-benchmark suite.

Each ``bench_figN.py`` module benchmarks the representative unit of work
behind the corresponding paper figure at the ``quick`` workload scale,
so the whole suite runs in minutes.  The full sweeps that regenerate
each figure's series live in the experiment harness
(``python -m repro.experiments <figN> --scale default``); the benchmark
suite asserts the figures' *qualitative* shape (who wins, what grows)
while timing the kernels.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent))

from repro.experiments.workloads import scaled_neural, scaled_uniform  # noqa: E402

#: Object counts for the benchmark suite (the "quick" regime).
NEURAL_N = 4000
UNIFORM_N = 4000


@pytest.fixture(scope="module")
def neural_workload():
    """Fresh quick-scale neural workload per benchmark module."""
    dataset, motion, _labels = scaled_neural(NEURAL_N, seed=101)
    return dataset, motion


@pytest.fixture(scope="module")
def neural_dataset():
    dataset, _motion, _labels = scaled_neural(NEURAL_N, seed=102)
    return dataset


@pytest.fixture(scope="module")
def uniform_dataset():
    dataset, _motion = scaled_uniform(UNIFORM_N, width=15.0, seed=103)
    return dataset


@pytest.fixture(scope="module")
def uniform_workload():
    dataset, motion = scaled_uniform(UNIFORM_N, width=15.0, seed=104)
    return dataset, motion
