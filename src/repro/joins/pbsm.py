"""Partition Based Spatial-Merge join (Patel & DeWitt [27]).

PBSM overlays a uniform grid and *replicates* every object into each
partition its MBR intersects; each partition is then joined locally with
a plane sweep.  Replication has two costs the paper calls out (§2.1):

* the same object pair can be tested in several partitions, inflating
  the overlap-test count ("the same pair of objects may be tested
  multiple times, resulting in a substantial increase of intersection
  tests");
* duplicate results must be suppressed — implemented here with the
  standard reference-point method: a pair is *reported* only by the
  partition containing the top-left-front corner of the pair's
  intersection box, so every result appears exactly once while the
  duplicate tests still happen (and are counted).

The index (partition lists) is rebuilt from scratch every time step.
"""

from __future__ import annotations

import numpy as np

from repro.core.cells import pack_cell_ids
from repro.engine import (
    DEFAULT_PARTITION_TASKS,
    GroupSelfJoinTask,
    JoinPlan,
    chunk_by_volume,
)
from repro.geometry import group_by_keys
from repro.joins.base import ID_BYTES, POINTER_BYTES, SpatialJoinAlgorithm

from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.datasets import SpatialDataset
    from repro.engine import Executor

__all__ = ["PBSMJoin"]


class PBSMJoin(SpatialJoinAlgorithm):
    """PBSM self-join with reference-point duplicate suppression.

    Parameters
    ----------
    partition_factor:
        Partition width as a multiple of the largest object width.  The
        default (2.0) keeps replication moderate — each object intersects
        at most 8 partitions — while partitions stay small enough for
        the local sweeps.
    """

    name = "pbsm"

    def __init__(self, count_only: bool = False, partition_factor: float = 2.0, executor: Executor | None = None) -> None:
        super().__init__(count_only=count_only, executor=executor)
        if partition_factor <= 0:
            raise ValueError(
                f"partition_factor must be positive, got {partition_factor}"
            )
        self.partition_factor = float(partition_factor)
        self._index = None

    def _build(self, dataset: SpatialDataset) -> None:
        lo, hi = dataset.boxes()
        width = self.partition_factor * dataset.max_width
        origin, _ = dataset.bounds

        # Replicate: each object enters every partition its MBR intersects.
        lo_coords = np.floor((lo - origin) / width).astype(np.int64)
        hi_coords = np.floor((hi - origin) / width).astype(np.int64)
        spans = hi_coords - lo_coords + 1
        counts = spans.prod(axis=1)
        total = int(counts.sum())
        rep_obj = np.repeat(np.arange(len(dataset), dtype=np.int64), counts)
        ends = np.cumsum(counts)
        within = np.arange(total, dtype=np.int64) - np.repeat(ends - counts, counts)
        span_y = spans[rep_obj, 1]
        span_z = spans[rep_obj, 2]
        dz = within % span_z
        dy = (within // span_z) % span_y
        dx = within // (span_z * span_y)
        rep_coords = lo_coords[rep_obj] + np.stack([dx, dy, dz], axis=1)
        keys = pack_cell_ids(rep_coords)

        cat, starts, stops, unique_keys = group_by_keys(
            keys, secondary_sort=lo[rep_obj, 0], ids=rep_obj
        )
        # Per-partition spatial bounds for the reference-point test.  The
        # coordinates are recovered from one replicated entry per group.
        order = np.lexsort((lo[rep_obj, 0], keys))
        group_coords = rep_coords[order][starts]
        part_lo = origin + group_coords * width
        self._index = {
            "lo": lo,
            "hi": hi,
            "cat": cat,
            "starts": starts,
            "stops": stops,
            "n_partitions": unique_keys.size,
            "part_lo": part_lo,
            "part_hi": part_lo + width,
            "replicas": total,
        }

    def plan(self, dataset: SpatialDataset) -> JoinPlan:
        """One sweep task per volume-balanced slice of the partitions.

        Each task verifies its partitions' candidates with reference-point
        deduplication: a pair is reported only by the partition containing
        the lower corner of the pair's intersection box, so replication
        never duplicates results (while the duplicate tests still happen
        and are counted, as the paper's §2.1 critique requires).
        """
        index = self._index
        context = {
            "lo": index["lo"],
            "hi": index["hi"],
            "cat": index["cat"],
            "starts": index["starts"],
            "stops": index["stops"],
            "part_lo": index["part_lo"],
            "part_hi": index["part_hi"],
        }
        partitions = np.arange(index["n_partitions"], dtype=np.int64)
        sizes = index["stops"] - index["starts"]
        tasks = [
            GroupSelfJoinTask(
                groups=partitions[start:stop],
                count="x-sweep",
                pair_filter="reference-point",
            )
            for start, stop in chunk_by_volume(
                sizes * sizes, DEFAULT_PARTITION_TASKS
            )
        ]
        return JoinPlan(context=context, tasks=tasks)

    def memory_footprint(self) -> int:
        if self._index is None:
            return 0
        # Partition directory plus one pointer per *replicated* entry.
        return (
            self._index["n_partitions"] * (ID_BYTES + 16)
            + self._index["replicas"] * POINTER_BYTES
        )
