"""Scalar loop cores behind the ``python`` and ``numba`` backends.

Each function here is the straight-line, loop-nest formulation of one
kernel primitive from :data:`repro.geometry.kernels.spec.KERNEL_SPECS`,
written in the numba-compilable subset of Python: plain ``for`` loops
over 1-D float64/int64 arrays, no closures, no object-mode features.
The ``numba`` backend JIT-compiles these functions verbatim; the
``python`` backend runs the very same bytecode interpreted, so backend
parity against the numpy oracle is exercised even in environments where
numba is not installed.

Every core follows a two-pass protocol: called once with ``do_emit=False``
and empty output arrays to count matches (so the wrapper can allocate
exact-size outputs), then again with ``do_emit=True`` to fill them.
Both passes walk candidates in the identical order, and the comparison
operators are exactly those of the numpy oracle (strict ``<`` overlap on
every axis, inclusive enclosure), so pair sets, ``overlap_tests`` and
``shortcut_pairs`` match the oracle bit-for-bit.

Positions, not object ids, flow through the cores: inputs are the
grouped-order coordinate columns (``lo[cat][:, d]`` etc.) and outputs are
positions into that order; the backend wrappers map positions back to
ids via ``cat``.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "self_join_groups_core",
    "cross_join_groups_core",
    "cell_pair_sweep_core",
    "strip_sweep_core",
    "hot_cell_emit_core",
]


def self_join_groups_core(
    xlo: np.ndarray,
    xhi: np.ndarray,
    ylo: np.ndarray,
    yhi: np.ndarray,
    zlo: np.ndarray,
    zhi: np.ndarray,
    starts: np.ndarray,
    stops: np.ndarray,
    groups: np.ndarray,
    count_full: bool,
    left_out: np.ndarray,
    right_out: np.ndarray,
    group_out: np.ndarray,
    do_emit: bool,
) -> tuple[int, int]:
    """Strict-upper-triangle pairs within each listed group.

    Returns ``(n_matches, overlap_tests)``; ``count_full`` selects the
    nested-loop accounting (every candidate charged) over the x-sweep
    accounting (only x-overlapping candidates charged).
    """
    tests = 0
    k = 0
    for g in range(groups.shape[0]):
        s = starts[groups[g]]
        e = stops[groups[g]]
        for i in range(s, e):
            for j in range(i + 1, e):
                x_ov = xlo[i] < xhi[j] and xlo[j] < xhi[i]
                if count_full or x_ov:
                    tests += 1
                if (
                    x_ov
                    and ylo[i] < yhi[j]
                    and ylo[j] < yhi[i]
                    and zlo[i] < zhi[j]
                    and zlo[j] < zhi[i]
                ):
                    if do_emit:
                        left_out[k] = i
                        right_out[k] = j
                        group_out[k] = g
                    k += 1
    return k, tests


def cross_join_groups_core(
    a_xlo: np.ndarray,
    a_xhi: np.ndarray,
    a_ylo: np.ndarray,
    a_yhi: np.ndarray,
    a_zlo: np.ndarray,
    a_zhi: np.ndarray,
    b_xlo: np.ndarray,
    b_xhi: np.ndarray,
    b_ylo: np.ndarray,
    b_yhi: np.ndarray,
    b_zlo: np.ndarray,
    b_zhi: np.ndarray,
    starts_a: np.ndarray,
    stops_a: np.ndarray,
    starts_b: np.ndarray,
    stops_b: np.ndarray,
    pair_a: np.ndarray,
    pair_b: np.ndarray,
    count_full: bool,
    left_out: np.ndarray,
    right_out: np.ndarray,
    group_out: np.ndarray,
    do_emit: bool,
) -> tuple[int, int]:
    """All (A-member, B-member) pairs of each listed group pair."""
    tests = 0
    k = 0
    for p in range(pair_a.shape[0]):
        a0 = starts_a[pair_a[p]]
        a1 = stops_a[pair_a[p]]
        b0 = starts_b[pair_b[p]]
        b1 = stops_b[pair_b[p]]
        for i in range(a0, a1):
            for j in range(b0, b1):
                x_ov = a_xlo[i] < b_xhi[j] and b_xlo[j] < a_xhi[i]
                if count_full or x_ov:
                    tests += 1
                if (
                    x_ov
                    and a_ylo[i] < b_yhi[j]
                    and b_ylo[j] < a_yhi[i]
                    and a_zlo[i] < b_zhi[j]
                    and b_zlo[j] < a_zhi[i]
                ):
                    if do_emit:
                        left_out[k] = i
                        right_out[k] = j
                        group_out[k] = p
                    k += 1
    return k, tests


def cell_pair_sweep_core(
    xlo: np.ndarray,
    xhi: np.ndarray,
    ylo: np.ndarray,
    yhi: np.ndarray,
    zlo: np.ndarray,
    zhi: np.ndarray,
    center_lo: np.ndarray,
    center_hi: np.ndarray,
    starts: np.ndarray,
    stops: np.ndarray,
    pair_a: np.ndarray,
    pair_b: np.ndarray,
    use_shortcut: bool,
    flags: np.ndarray,
    left_out: np.ndarray,
    right_out: np.ndarray,
    do_emit: bool,
) -> tuple[int, int, int]:
    """Optimized two-direction cell-pair sweep with enclosure shortcut.

    ``center_lo``/``center_hi`` are the per-cell ``(n_cells, 3)`` tight
    center bounds; ``flags`` is a caller-provided scratch buffer at least
    as long as the largest A-cell (re-zeroed per cell pair).  Returns
    ``(n_matches, overlap_tests, shortcut_pairs)``.

    Direction 1 scans each non-enclosing A-object over B's window
    ``xlo_b in [a.xlo, a.xhi)``; direction 2 scans each B-object over A's
    window ``xlo_a in (b.xlo, b.xhi)`` — ties on ``xlo`` break toward
    direction 1, so no pair repeats — skipping (uncharged) the A-objects
    already emitted via the shortcut.  Identical candidate set, charge
    order and accounting as the numpy oracle.
    """
    tests = 0
    shortcuts = 0
    k = 0
    for p in range(pair_a.shape[0]):
        ca = pair_a[p]
        cb = pair_b[p]
        a0 = starts[ca]
        a1 = stops[ca]
        b0 = starts[cb]
        b1 = stops[cb]
        if a1 <= a0 or b1 <= b0:
            continue
        bc_xlo = center_lo[cb, 0]
        bc_ylo = center_lo[cb, 1]
        bc_zlo = center_lo[cb, 2]
        bc_xhi = center_hi[cb, 0]
        bc_yhi = center_hi[cb, 1]
        bc_zhi = center_hi[cb, 2]

        # Enclosure shortcut: A-objects whose MBR encloses B's tight
        # center bounds (inclusive comparisons, as in mbr.encloses) pair
        # with all of B without tests.
        for i in range(a0, a1):
            enclosing = False
            if use_shortcut:
                enclosing = (
                    xlo[i] <= bc_xlo
                    and ylo[i] <= bc_ylo
                    and zlo[i] <= bc_zlo
                    and xhi[i] >= bc_xhi
                    and yhi[i] >= bc_yhi
                    and zhi[i] >= bc_zhi
                )
            flags[i - a0] = enclosing
            if enclosing:
                shortcuts += b1 - b0
                if do_emit:
                    for j in range(b0, b1):
                        left_out[k] = i
                        right_out[k] = j
                        k += 1
                else:
                    k += b1 - b0

        # Direction 1: A over B, window xlo_b in [a.xlo, a.xhi).
        for i in range(a0, a1):
            if flags[i - a0]:
                continue
            j0 = b0
            j1 = b1
            target = xlo[i]
            while j0 < j1:
                mid = (j0 + j1) >> 1
                if xlo[mid] < target:
                    j0 = mid + 1
                else:
                    j1 = mid
            for j in range(j0, b1):
                if xlo[j] >= xhi[i]:
                    break
                tests += 1
                if (
                    ylo[i] < yhi[j]
                    and ylo[j] < yhi[i]
                    and zlo[i] < zhi[j]
                    and zlo[j] < zhi[i]
                ):
                    if do_emit:
                        left_out[k] = i
                        right_out[k] = j
                    k += 1

        # Direction 2: B over A, window xlo_a in (b.xlo, b.xhi); A-objects
        # flagged enclosing are skipped without a charge (their pairs were
        # already emitted by the shortcut).
        for j in range(b0, b1):
            i0 = a0
            i1 = a1
            target = xlo[j]
            while i0 < i1:
                mid = (i0 + i1) >> 1
                if xlo[mid] <= target:
                    i0 = mid + 1
                else:
                    i1 = mid
            for i in range(i0, a1):
                if xlo[i] >= xhi[j]:
                    break
                if flags[i - a0]:
                    continue
                tests += 1
                if (
                    ylo[i] < yhi[j]
                    and ylo[j] < yhi[i]
                    and zlo[i] < zhi[j]
                    and zlo[j] < zhi[i]
                ):
                    if do_emit:
                        left_out[k] = i
                        right_out[k] = j
                    k += 1
    return k, tests, shortcuts


def strip_sweep_core(
    lo: np.ndarray,
    hi: np.ndarray,
    start: int,
    stop: int,
    carry: np.ndarray,
    left_out: np.ndarray,
    right_out: np.ndarray,
    do_emit: bool,
) -> tuple[int, int]:
    """One strip of the partitioned global plane sweep (positions).

    ``lo``/``hi`` are the whole dataset's ``(n, 3)`` box arrays sorted
    ascending by ``lo[:, 0]``; the within-strip forward sweep charges
    each x-overlapping pair once, then every carried-in position scans
    the strip's prefix while ``xlo < its xhi``.  Returns
    ``(n_matches, overlap_tests)`` with matches as sorted positions.
    """
    tests = 0
    k = 0
    for i in range(start, stop):
        for j in range(i + 1, stop):
            if lo[j, 0] >= hi[i, 0]:
                break
            tests += 1
            if (
                lo[i, 1] < hi[j, 1]
                and lo[j, 1] < hi[i, 1]
                and lo[i, 2] < hi[j, 2]
                and lo[j, 2] < hi[i, 2]
            ):
                if do_emit:
                    left_out[k] = i
                    right_out[k] = j
                k += 1
    for c in range(carry.shape[0]):
        i = carry[c]
        for j in range(start, stop):
            if lo[j, 0] >= hi[i, 0]:
                break
            tests += 1
            if (
                lo[i, 1] < hi[j, 1]
                and lo[j, 1] < hi[i, 1]
                and lo[i, 2] < hi[j, 2]
                and lo[j, 2] < hi[i, 2]
            ):
                if do_emit:
                    left_out[k] = i
                    right_out[k] = j
                k += 1
    return k, tests


def hot_cell_emit_core(
    starts: np.ndarray,
    stops: np.ndarray,
    hot_slots: np.ndarray,
    left_out: np.ndarray,
    right_out: np.ndarray,
    do_emit: bool,
) -> int:
    """Strict-upper-triangle emission within each hot cell (no tests)."""
    k = 0
    for h in range(hot_slots.shape[0]):
        s = starts[hot_slots[h]]
        e = stops[hot_slots[h]]
        for i in range(s, e):
            for j in range(i + 1, e):
                if do_emit:
                    left_out[k] = i
                    right_out[k] = j
                k += 1
    return k
