"""Core machinery for repro-lint: diagnostics, suppressions, file walks.

The linter is deliberately dependency-free: :mod:`ast` for structure,
:mod:`tokenize` for comments (``ast`` drops them), and nothing else.
Rules are small classes registered with :func:`register`; each receives
a :class:`FileContext` and yields :class:`Diagnostic` objects.  Line
suppressions use the same shape as ruff's ``noqa``::

    risky_call()  # repro-lint: ignore[RPL003] one-line justification

A bare ``# repro-lint: ignore`` (no code list) suppresses every rule on
that line; a code list suppresses exactly those codes.
"""

from __future__ import annotations

import ast
import contextlib
import io
import re
import tokenize
from collections.abc import Iterable, Iterator
from dataclasses import dataclass
from pathlib import Path

__all__ = [
    "Diagnostic",
    "FileContext",
    "Rule",
    "RULES",
    "register",
    "collect_suppressions",
    "iter_python_files",
    "lint_file",
    "lint_paths",
    "walk_scoped",
]

SUPPRESSION_RE = re.compile(
    r"#\s*repro-lint:\s*ignore(?:\[(?P<codes>[A-Za-z0-9_,\s]+)\])?"
)


@dataclass(frozen=True, order=True)
class Diagnostic:
    """One finding: ``path:line:col: CODE message``."""

    path: str
    line: int
    col: int
    code: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"


def collect_suppressions(source: str) -> dict[int, frozenset[str] | None]:
    """Map line number → suppressed codes (``None`` means *all* codes)."""
    suppressions: dict[int, frozenset[str] | None] = {}
    # An untokenizable file already failed ast.parse upstream.
    with contextlib.suppress(tokenize.TokenError):
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = SUPPRESSION_RE.search(token.string)
            if match is None:
                continue
            codes = match.group("codes")
            if codes is None:
                suppressions[token.start[0]] = None
            else:
                parsed = frozenset(
                    code.strip().upper() for code in codes.split(",") if code.strip()
                )
                existing = suppressions.get(token.start[0], frozenset())
                if existing is None:
                    continue
                suppressions[token.start[0]] = parsed | existing
    return suppressions


class FileContext:
    """Everything a rule needs to know about one parsed file."""

    def __init__(self, path: Path, display: str, source: str, tree: ast.Module) -> None:
        self.path = path
        self.display = display
        #: Resolved POSIX path used for scope matching, so rules behave
        #: identically on the real tree and on fixture trees.
        self.resolved = path.resolve().as_posix()
        self.source = source
        self.tree = tree
        self.suppressions = collect_suppressions(source)

    def in_scope(self, patterns: Iterable[str]) -> bool:
        return any(pattern in self.resolved for pattern in patterns)

    def diagnostic(self, node: ast.AST, code: str, message: str) -> Diagnostic:
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0) + 1
        return Diagnostic(self.display, line, col, code, message)

    def suppressed(self, diagnostic: Diagnostic) -> bool:
        codes = self.suppressions.get(diagnostic.line, frozenset())
        if diagnostic.line not in self.suppressions:
            return False
        return codes is None or diagnostic.code in codes


class Rule:
    """Base class: one diagnostic code, one :meth:`check` pass."""

    code = "RPL000"
    title = "abstract rule"
    rationale = ""

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        raise NotImplementedError


#: Registry, populated by :mod:`tools.repro_lint.rules` at import time.
RULES: list[Rule] = []


def register(rule_class: type[Rule]) -> type[Rule]:
    RULES.append(rule_class())
    return rule_class


def walk_scoped(tree: ast.Module) -> Iterator[tuple[ast.AST, str]]:
    """Yield ``(node, qualname)`` for every node in ``tree``.

    ``qualname`` is the dotted path of enclosing class/function scopes
    (empty at module level).  A ``FunctionDef``/``ClassDef`` node itself
    is reported under its *enclosing* scope; its body under its own.
    """
    stack: list[str] = []

    def visit(node: ast.AST) -> Iterator[tuple[ast.AST, str]]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                yield child, ".".join(stack)
                stack.append(child.name)
                yield from visit(child)
                stack.pop()
            else:
                yield child, ".".join(stack)
                yield from visit(child)

    yield from visit(tree)


# ----------------------------------------------------------------------
# Drivers
# ----------------------------------------------------------------------
_SKIP_DIRS = {"__pycache__", ".git", ".hypothesis", ".benchmarks", "results"}


def iter_python_files(paths: Iterable[str | Path]) -> Iterator[Path]:
    """Expand files/directories into a sorted stream of ``.py`` files."""
    for raw in paths:
        path = Path(raw)
        if path.is_file():
            if path.suffix == ".py":
                yield path
            continue
        if not path.is_dir():
            raise FileNotFoundError(f"no such file or directory: {raw}")
        for candidate in sorted(path.rglob("*.py")):
            if any(part in _SKIP_DIRS or part.startswith(".") for part in candidate.parts):
                continue
            yield candidate


def lint_file(
    path: Path,
    display: str | None = None,
    select: frozenset[str] | None = None,
) -> list[Diagnostic]:
    """Lint one file; raises ``SyntaxError`` on unparsable source."""
    source = path.read_text(encoding="utf-8")
    tree = ast.parse(source, filename=str(path))
    ctx = FileContext(path, display or str(path), source, tree)
    findings: list[Diagnostic] = []
    for rule in RULES:
        if select is not None and rule.code not in select:
            continue
        for diagnostic in rule.check(ctx):
            if not ctx.suppressed(diagnostic):
                findings.append(diagnostic)
    return findings


def lint_paths(
    paths: Iterable[str | Path],
    select: frozenset[str] | None = None,
) -> tuple[list[Diagnostic], int]:
    """Lint every python file under ``paths``.

    Returns ``(diagnostics, files_checked)``; diagnostics are sorted by
    location.  Import the rules module first (the CLI does) or the
    registry is empty.
    """
    findings: list[Diagnostic] = []
    checked = 0
    for path in iter_python_files(paths):
        findings.extend(lint_file(path, display=str(path), select=select))
        checked += 1
    findings.sort()
    return findings, checked
