import asyncio

from .helpers import settle


async def handle() -> None:
    await asyncio.to_thread(settle)
