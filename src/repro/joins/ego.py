"""Epsilon Grid Order join (Böhm et al. [4]), adapted to 3-D boxes.

EGO lays a uniform grid of width ε over the data, orders the grid cells
lexicographically (the *epsilon grid order*) and joins each cell with
the neighbouring cells of that order using nested loops.  Originally a
similarity join on points, the adaptation for fixed-extent spatial
objects maps each object by its center with ε equal to the largest
object width, so all overlapping pairs lie within one cell layer —
exactly the configuration the paper describes ("the grid resolution
(epsilon) is based on the object size used in the dataset").

Characteristics the paper's evaluation relies on:

* very fast, memory-lean index build (one grid, no hierarchy, objects
  assigned to exactly one cell);
* nested-loop joins inside and between cells, so the overlap-test count
  grows quadratically with cell population — the reason EGO "does not
  scale as the number of objects increase in each grid cell" (§5.2.2).

The index is rebuilt from scratch each time step (throw-away index).
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.cells import half_neighborhood_offsets, pack_cell_ids
from repro.engine import (
    DEFAULT_PARTITION_TASKS,
    GroupCrossJoinTask,
    GroupSelfJoinTask,
    JoinPlan,
    chunk_by_volume,
)
from repro.geometry import group_by_keys
from repro.joins.base import ID_BYTES, POINTER_BYTES, SpatialJoinAlgorithm

from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.datasets import SpatialDataset
    from repro.engine import Executor

__all__ = ["EGOJoin"]


class EGOJoin(SpatialJoinAlgorithm):
    """Epsilon-grid-order self-join with per-cell nested loops.

    Parameters
    ----------
    epsilon_factor:
        Grid width as a multiple of the largest object width (default 1:
        one neighbour layer suffices).
    """

    name = "ego"

    def __init__(self, count_only: bool = False, epsilon_factor: float = 1.0, executor: Executor | None = None) -> None:
        super().__init__(count_only=count_only, executor=executor)
        if epsilon_factor <= 0:
            raise ValueError(f"epsilon_factor must be positive, got {epsilon_factor}")
        self.epsilon_factor = float(epsilon_factor)
        self._index = None

    def _build(self, dataset: SpatialDataset) -> None:
        lo, hi = dataset.boxes()
        epsilon = self.epsilon_factor * dataset.max_width
        origin, _ = dataset.bounds
        coords = np.floor((dataset.centers - origin) / epsilon).astype(np.int64)
        keys = pack_cell_ids(coords)
        cat, starts, stops, unique_keys = group_by_keys(keys)
        layers = max(1, math.ceil(dataset.max_width / epsilon - 1e-9))
        self._index = {
            "lo": lo,
            "hi": hi,
            "cat": cat,
            "starts": starts,
            "stops": stops,
            "keys": unique_keys,
            "layers": layers,
        }

    def plan(self, dataset: SpatialDataset) -> JoinPlan:
        """Within-cell tasks plus neighbour-pair tasks over the grid order.

        The half neighbourhood of every cell is located up front by
        binary search over the epsilon grid order (the sorted cell-key
        array); both the within-cell and between-cell work are then
        split into volume-balanced slices.  The throw-away index is
        discarded at the next build; the reference is kept until then so
        the footprint of the step can be reported.
        """
        index = self._index
        unique_keys = index["keys"]
        context = {
            "lo": index["lo"],
            "hi": index["hi"],
            "cat": index["cat"],
            "starts": index["starts"],
            "stops": index["stops"],
        }
        sizes = index["stops"] - index["starts"]
        tasks = [
            GroupSelfJoinTask(
                groups=np.arange(unique_keys.size, dtype=np.int64)[start:stop],
                count="full",
            )
            for start, stop in chunk_by_volume(
                sizes * sizes, DEFAULT_PARTITION_TASKS
            )
        ]

        # Between-cell nested loops: half neighbourhood located by binary
        # search over the epsilon grid order (the sorted cell-key array).
        offsets = half_neighborhood_offsets(index["layers"])
        offset_keys = pack_cell_ids(np.asarray(offsets, dtype=np.int64))
        zero_key = pack_cell_ids(np.zeros((1, 3), dtype=np.int64))[0]
        pair_a = []
        pair_b = []
        for offset_key in offset_keys:
            neighbor_keys = unique_keys + (int(offset_key) - int(zero_key))
            slots = np.searchsorted(unique_keys, neighbor_keys)
            slots = np.clip(slots, 0, unique_keys.size - 1)
            found = unique_keys[slots] == neighbor_keys
            pair_a.append(np.flatnonzero(found))
            pair_b.append(slots[found])
        pair_a = np.concatenate(pair_a)
        pair_b = np.concatenate(pair_b)
        if pair_a.size:
            weights = sizes[pair_a] * sizes[pair_b]
            tasks.extend(
                GroupCrossJoinTask(
                    pair_a=pair_a[start:stop],
                    pair_b=pair_b[start:stop],
                    count="full",
                )
                for start, stop in chunk_by_volume(
                    weights, DEFAULT_PARTITION_TASKS
                )
            )
        return JoinPlan(context=context, tasks=tasks)

    def memory_footprint(self) -> int:
        if self._index is None:
            return 0
        n_cells = self._index["keys"].size
        n_objects = self._index["cat"].size
        # Cell key + list header per cell, one pointer per object.
        return n_cells * (ID_BYTES + 16) + n_objects * POINTER_BYTES
