"""Shared candidate-verification kernel for engine tasks.

Partition tasks describe *which* group pairs to compare; this module is
the single place where candidates are actually tested and emitted.  It
wraps the vectorised group-join primitives of :mod:`repro.geometry.batch`
and layers the per-algorithm deduplication filters on top, so every
algorithm's verification goes through identical code:

* ``plain`` — emit every overlapping candidate (exactly-once plans);
* ``reference-point`` — PBSM's duplicate suppression: a pair is reported
  only by the partition containing the lower corner of the pair's
  intersection box.

Overlap-test accounting is inherited unchanged from the batch kernels
(``count="full"`` nested-loop or ``count="x-sweep"`` forward-sweep
accounting), so partitioning a join into tasks never changes its total
test count.
"""

from __future__ import annotations

import numpy as np

from repro.geometry import PairAccumulator, cross_join_groups, self_join_groups
from repro.geometry.batch import PairCallback

from collections.abc import Mapping

__all__ = ["verify_self_groups", "verify_cross_groups"]


def _plain_emitter(accumulator: PairAccumulator) -> PairCallback:
    def on_pairs(left, right, _groups):
        accumulator.extend(left, right)

    return on_pairs


def _reference_point_emitter(
    accumulator: PairAccumulator,
    lo: np.ndarray,
    groups: np.ndarray,
    part_lo: np.ndarray,
    part_hi: np.ndarray,
) -> PairCallback:
    """PBSM reference-point filter over the task's ``groups`` subset.

    ``self_join_groups`` reports each batch's pair positions relative to
    the ``groups`` array it was handed; map them back to global partition
    ids before testing the reference point against the partition bounds.
    """

    def on_pairs(left, right, group_pos):
        partitions = groups[group_pos]
        ref = np.maximum(lo[left], lo[right])
        inside = np.logical_and(
            (ref >= part_lo[partitions]).all(axis=1),
            (ref < part_hi[partitions]).all(axis=1),
        )
        if inside.any():
            accumulator.extend(left[inside], right[inside])

    return on_pairs


def verify_self_groups(
    ctx: Mapping[str, np.ndarray],
    accumulator: PairAccumulator,
    groups: np.ndarray,
    count: str,
    pair_filter: str | None = None,
    cat_key: str = "cat",
    starts_key: str = "starts",
    stops_key: str = "stops",
) -> int:
    """Verify all within-group candidates of ``groups``; return test count."""
    lo = ctx["lo"]
    if pair_filter is None:
        on_pairs = _plain_emitter(accumulator)
    elif pair_filter == "reference-point":
        on_pairs = _reference_point_emitter(
            accumulator, lo, groups, ctx["part_lo"], ctx["part_hi"]
        )
    else:
        raise ValueError(f"unknown pair filter {pair_filter!r}")
    return self_join_groups(
        lo,
        ctx["hi"],
        ctx[cat_key],
        ctx[starts_key],
        ctx[stops_key],
        groups,
        on_pairs,
        count=count,
    )


def verify_cross_groups(
    ctx: Mapping[str, np.ndarray],
    accumulator: PairAccumulator,
    pair_a: np.ndarray,
    pair_b: np.ndarray,
    count: str,
    a_keys: tuple[str, str, str] = ("cat", "starts", "stops"),
    b_keys: tuple[str, str, str] = ("cat", "starts", "stops"),
) -> int:
    """Verify all cross-group candidates of the listed group pairs."""
    cat_a, starts_a, stops_a = (ctx[key] for key in a_keys)
    cat_b, starts_b, stops_b = (ctx[key] for key in b_keys)
    return cross_join_groups(
        ctx["lo"],
        ctx["hi"],
        cat_a,
        starts_a,
        stops_a,
        cat_b,
        starts_b,
        stops_b,
        pair_a,
        pair_b,
        _plain_emitter(accumulator),
        count=count,
    )
