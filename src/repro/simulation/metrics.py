"""Aggregation helpers over simulation records (speedups, series)."""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:
    from collections.abc import Mapping, Sequence

    from repro.simulation.runner import StepRecord

__all__ = ["series", "speedup", "speedup_table", "converged_at"]


def series(records: Sequence[StepRecord], field: str) -> list[Any]:
    """Extract one per-step metric as a list (Figure-7-style series).

    ``field`` is any :class:`~repro.simulation.runner.StepRecord`
    attribute name, or ``"total_seconds"``.
    """
    return [getattr(record, field) for record in records]


def speedup(
    baseline_records: Sequence[StepRecord],
    candidate_records: Sequence[StepRecord],
) -> float:
    """Total-join-time speedup of ``candidate`` over ``baseline``.

    Ratios above 1 mean the candidate is faster; this is the quantity
    behind the paper's "8 to 12x" headline claims.
    """
    baseline_total = sum(r.total_seconds for r in baseline_records)
    candidate_total = sum(r.total_seconds for r in candidate_records)
    if candidate_total <= 0:
        raise ValueError("candidate total time must be positive")
    return baseline_total / candidate_total


def speedup_table(
    records_by_name: Mapping[str, Sequence[StepRecord]],
    reference_name: str,
) -> dict[str, float]:
    """Speedups of ``reference_name`` over every other recorded algorithm.

    Returns ``{name: speedup}`` excluding the reference itself, with the
    best (smallest) competitor ratio answering "speedup over the state of
    the art".
    """
    if reference_name not in records_by_name:
        raise KeyError(f"unknown reference {reference_name!r}")
    reference = records_by_name[reference_name]
    return {
        name: speedup(records, reference)
        for name, records in records_by_name.items()
        if name != reference_name
    }


def converged_at(
    values: Sequence[float], threshold: float = 0.1, window: int = 2
) -> int | None:
    """First index where ``values`` stays within ``threshold`` relative
    change for ``window`` consecutive steps (tuning-convergence probe).

    Returns ``None`` when the series never settles.
    """
    if window < 1:
        raise ValueError(f"window must be at least 1, got {window}")
    stable = 0
    for k in range(1, len(values)):
        previous = values[k - 1]
        if previous == 0:
            stable = 0
            continue
        if abs(values[k] - previous) / abs(previous) <= threshold:
            stable += 1
            if stable >= window:
                return k - window + 1
        else:
            stable = 0
    return None
