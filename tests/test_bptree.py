"""Unit and fuzz tests for the B+-Tree substrate."""

from __future__ import annotations

import random

import pytest

from repro.index import BPlusTree


class TestBasics:
    def test_insert_and_lookup(self):
        tree = BPlusTree(order=4)
        assert tree.insert(5, 100)
        assert tree.insert(5, 101)
        assert sorted(tree.values_for(5)) == [100, 101]
        assert len(tree) == 2

    def test_duplicate_entry_rejected(self):
        tree = BPlusTree(order=4)
        assert tree.insert(1, 1)
        assert not tree.insert(1, 1)
        assert len(tree) == 1

    def test_delete(self):
        tree = BPlusTree(order=4)
        tree.insert(1, 1)
        assert tree.delete(1, 1)
        assert not tree.delete(1, 1)
        assert len(tree) == 0
        assert tree.values_for(1) == []

    def test_order_validation(self):
        with pytest.raises(ValueError):
            BPlusTree(order=2)

    def test_items_sorted(self):
        tree = BPlusTree(order=4)
        for k in (9, 3, 7, 1, 5):
            tree.insert(k, 0)
        assert [k for k, _v in tree.items()] == [1, 3, 5, 7, 9]

    def test_height_grows_with_size(self):
        tree = BPlusTree(order=4)
        assert tree.height == 1
        for k in range(100):
            tree.insert(k, 0)
        assert tree.height >= 3
        assert tree.node_count() > 10


class TestRangeScans:
    def test_inclusive_bounds(self):
        tree = BPlusTree(order=4)
        for k in range(20):
            tree.insert(k, k * 10)
        assert sorted(tree.range_values(5, 8)) == [50, 60, 70, 80]

    def test_empty_range(self):
        tree = BPlusTree(order=4)
        for k in (1, 2, 10):
            tree.insert(k, k)
        assert tree.range_values(4, 9) == []

    def test_range_with_duplicates(self):
        tree = BPlusTree(order=4)
        for v in range(15):
            tree.insert(7, v)
        assert sorted(tree.range_values(7, 7)) == list(range(15))

    def test_scan_crosses_many_leaves(self):
        tree = BPlusTree(order=4)
        for k in range(200):
            tree.insert(k, k)
        assert sorted(tree.range_values(0, 199)) == list(range(200))


class TestInvariantsUnderChurn:
    def test_fuzz_against_reference_set(self):
        rng = random.Random(42)
        tree = BPlusTree(order=6)
        reference = set()
        for step in range(20000):
            key = rng.randrange(0, 300)
            value = rng.randrange(0, 8)
            if rng.random() < 0.6:
                assert tree.insert(key, value) == ((key, value) not in reference)
                reference.add((key, value))
            else:
                assert tree.delete(key, value) == ((key, value) in reference)
                reference.discard((key, value))
            if step % 2500 == 0:
                tree.check_invariants()
        tree.check_invariants()
        assert tree.items() == sorted(reference)

    def test_range_scans_after_churn(self):
        rng = random.Random(7)
        tree = BPlusTree(order=8)
        reference = set()
        for _ in range(5000):
            key = rng.randrange(0, 100)
            value = rng.randrange(0, 6)
            if rng.random() < 0.65:
                tree.insert(key, value)
                reference.add((key, value))
            else:
                tree.delete(key, value)
                reference.discard((key, value))
        for _ in range(100):
            a, b = sorted((rng.randrange(0, 100), rng.randrange(0, 100)))
            expected = sorted(v for (k, v) in reference if a <= k <= b)
            assert sorted(tree.range_values(a, b)) == expected

    def test_drain_to_empty(self):
        tree = BPlusTree(order=4)
        entries = [(k, v) for k in range(50) for v in range(3)]
        for key, value in entries:
            tree.insert(key, value)
        random.Random(1).shuffle(entries)
        for key, value in entries:
            assert tree.delete(key, value)
        tree.check_invariants()
        assert len(tree) == 0
        assert tree.height == 1

    def test_monotone_bulk_then_reverse_delete(self):
        tree = BPlusTree(order=4)
        for k in range(300):
            tree.insert(k, 0)
        for k in reversed(range(300)):
            assert tree.delete(k, 0)
        assert len(tree) == 0
        tree.check_invariants()
