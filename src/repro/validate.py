"""Cross-validation utility: compare join implementations pair-exactly.

A downstream user integrating this library (or modifying an algorithm)
can verify any set of join implementations against each other — and
against the brute-force oracle — on any of the built-in workload
families, over moving simulation steps:

    python -m repro.validate --workload neural --n 3000 --steps 3
    python -m repro.validate --algorithms thermal-join cr-tree --oracle

Exit status is non-zero on any mismatch, making it usable as a CI gate.
"""

from __future__ import annotations

import argparse
import sys
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:
    from collections.abc import Callable, Sequence

from repro.experiments.figures import ALGORITHM_FACTORIES
from repro.experiments.workloads import scaled_clustered, scaled_neural, scaled_uniform
from repro.geometry import brute_force_pairs, pack_pairs, unique_pairs

__all__ = ["validate", "main"]

WORKLOADS = {
    "uniform": lambda n, seed: scaled_uniform(n, seed=seed),
    "clustered": lambda n, seed: scaled_clustered(n, seed=seed)[:2],
    "neural": lambda n, seed: scaled_neural(n, seed=seed)[:2],
}


def validate(
    workload: str = "uniform",
    n: int = 2000,
    steps: int = 2,
    algorithms: Sequence[str] | None = None,
    use_oracle: bool = True,
    seed: int = 0,
    log: Callable[[str], None] = print,
) -> bool:
    """Run the requested joins over identical steps and compare pair sets.

    Returns True when every algorithm (and, optionally, the brute-force
    oracle) produced the identical result on every step.
    """
    if workload not in WORKLOADS:
        raise ValueError(f"unknown workload {workload!r}; known: {sorted(WORKLOADS)}")
    if algorithms is None:
        algorithms = sorted(ALGORITHM_FACTORIES)
    unknown = [name for name in algorithms if name not in ALGORITHM_FACTORIES]
    if unknown:
        raise ValueError(f"unknown algorithms: {unknown}")

    dataset, motion = WORKLOADS[workload](n, seed)
    instances = {name: ALGORITHM_FACTORIES[name](count_only=False) for name in algorithms}
    ok = True
    for step in range(steps):
        keys = {}
        for name, algorithm in instances.items():
            result = algorithm.step(dataset)
            i_idx, j_idx = unique_pairs(*result.pairs, n)
            keys[name] = pack_pairs(i_idx, j_idx, n)
        if use_oracle:
            keys["<oracle>"] = pack_pairs(*brute_force_pairs(*dataset.boxes()), n)
        reference_name = next(iter(keys))
        reference = keys[reference_name]
        for name, got in keys.items():
            if got.shape == reference.shape and np.array_equal(got, reference):
                continue
            ok = False
            missing = np.setdiff1d(reference, got).size
            spurious = np.setdiff1d(got, reference).size
            log(
                f"step {step}: MISMATCH {name} vs {reference_name}: "
                f"{got.size} vs {reference.size} pairs "
                f"({missing} missing, {spurious} spurious)"
            )
        log(
            f"step {step}: {reference.size:,} pairs, "
            f"{len(keys)} implementations {'agree' if ok else 'DISAGREE'}"
        )
        motion.step(dataset)
    return ok


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.validate",
        description="Cross-check join implementations pair-exactly.",
    )
    parser.add_argument("--workload", default="uniform", choices=sorted(WORKLOADS))
    parser.add_argument("--n", type=int, default=2000)
    parser.add_argument("--steps", type=int, default=2)
    parser.add_argument(
        "--algorithms",
        nargs="+",
        default=None,
        metavar="NAME",
        help=f"subset to compare (default: all of {sorted(ALGORITHM_FACTORIES)})",
    )
    parser.add_argument(
        "--oracle",
        action="store_true",
        default=True,
        help="also compare against the brute-force oracle (default on)",
    )
    parser.add_argument(
        "--no-oracle", dest="oracle", action="store_false",
        help="skip the O(n^2) oracle (large n)",
    )
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)
    ok = validate(
        workload=args.workload,
        n=args.n,
        steps=args.steps,
        algorithms=args.algorithms,
        use_oracle=args.oracle,
        seed=args.seed,
    )
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
