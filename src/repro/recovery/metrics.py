"""Recovery counters, surfaced as the ``recovery`` metrics provider.

One :class:`RecoveryMetrics` instance lives on each checkpointing
:class:`~repro.simulation.SimulationRunner`; its :meth:`snapshot` is
registered with the algorithm's metrics registry so the counters land
in ``StepRecord.index_counters["recovery"]`` alongside the index and
executor counters.

The counters are deliberately *runner-local*, not process-global: a
resumed run legitimately differs from an uninterrupted one here
(``checkpoint_loads``), which is why the bit-identity test suite
compares trajectories with the ``recovery`` provider excluded.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["RecoveryMetrics"]


@dataclass
class RecoveryMetrics:
    """Counters for the checkpoint/restore and escalation machinery."""

    #: Checkpoints durably committed by this runner.
    checkpoints_written: int = 0
    #: Total payload + manifest bytes across those checkpoints.
    checkpoint_bytes: int = 0
    #: Wall seconds spent serializing + durably writing those checkpoints.
    checkpoint_seconds: float = 0.0
    #: Checkpoints successfully loaded (1 after a resume).
    checkpoint_loads: int = 0
    #: Corrupt/unreadable checkpoints skipped while falling back.
    corrupt_skipped: int = 0
    #: Steps retried from scratch after ``step_delta`` raised.
    step_retries: int = 0
    #: Steps that still failed after the from-scratch retry.
    escalations: int = 0

    def record_checkpoint(self, nbytes: int, seconds: float = 0.0) -> None:
        self.checkpoints_written += 1
        self.checkpoint_bytes += int(nbytes)
        self.checkpoint_seconds += float(seconds)

    def record_load(self, corrupt_skipped: int) -> None:
        self.checkpoint_loads += 1
        self.corrupt_skipped += int(corrupt_skipped)

    def record_step_retry(self) -> None:
        self.step_retries += 1

    def record_escalation(self) -> None:
        self.escalations += 1

    def snapshot(self) -> dict[str, int | float]:
        """Provider callable for the metrics registry."""
        return {
            "checkpoints_written": self.checkpoints_written,
            "checkpoint_bytes": self.checkpoint_bytes,
            "checkpoint_seconds": self.checkpoint_seconds,
            "checkpoint_loads": self.checkpoint_loads,
            "corrupt_skipped": self.corrupt_skipped,
            "step_retries": self.step_retries,
            "escalations": self.escalations,
        }
