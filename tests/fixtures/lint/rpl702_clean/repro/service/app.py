from .ops import refresh


async def handle() -> None:
    await refresh()
