"""Aggregated public API re-exports (loaded lazily by ``repro.__getattr__``).

Keeps ``import repro`` fast while letting users write
``from repro import ThermalJoin, SimulationRunner, CRTreeJoin``.
"""

from repro.analysis import (
    expected_cell_occupancy,
    expected_hot_spot_pair_fraction,
    expected_join_results,
    expected_partners_per_object,
    measured_selectivity,
)
from repro.datasets.io import load_dataset, save_dataset

from repro.core import (
    HillClimbingTuner,
    PGrid,
    PGridCell,
    TGrid,
    ThermalJoin,
)
from repro.engine import (
    Executor,
    JoinPlan,
    JoinTask,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    execute_step,
    resolve_executor,
)
from repro.index import BPlusTree
from repro.service import (
    JoinService,
    ServiceAnswer,
    ServiceOverloadedError,
    ShardRing,
)
from repro.joins import (
    CRTreeJoin,
    EGOJoin,
    IndexedNestedLoopRTreeJoin,
    JoinResult,
    JoinStatistics,
    LooseOctreeJoin,
    MXCIFOctreeJoin,
    NestedLoopJoin,
    PBSMJoin,
    PlaneSweepJoin,
    SpatialJoinAlgorithm,
    ST2BJoin,
    STRTree,
    SynchronousRTreeJoin,
    TouchJoin,
)
from repro.simulation import (
    SimulationRunner,
    StepRecord,
    converged_at,
    series,
    speedup,
    speedup_table,
)

__all__ = [
    "ThermalJoin",
    "PGrid",
    "PGridCell",
    "TGrid",
    "HillClimbingTuner",
    "JoinResult",
    "JoinStatistics",
    "SpatialJoinAlgorithm",
    "Executor",
    "SerialExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "resolve_executor",
    "JoinPlan",
    "JoinTask",
    "execute_step",
    "NestedLoopJoin",
    "PlaneSweepJoin",
    "PBSMJoin",
    "EGOJoin",
    "MXCIFOctreeJoin",
    "LooseOctreeJoin",
    "STRTree",
    "SynchronousRTreeJoin",
    "CRTreeJoin",
    "TouchJoin",
    "IndexedNestedLoopRTreeJoin",
    "ST2BJoin",
    "BPlusTree",
    "JoinService",
    "ServiceAnswer",
    "ServiceOverloadedError",
    "ShardRing",
    "SimulationRunner",
    "StepRecord",
    "series",
    "speedup",
    "speedup_table",
    "converged_at",
    "expected_partners_per_object",
    "expected_join_results",
    "expected_cell_occupancy",
    "expected_hot_spot_pair_fraction",
    "measured_selectivity",
    "save_dataset",
    "load_dataset",
]
