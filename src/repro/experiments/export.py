"""Exporting experiment results to JSON/CSV for external plotting.

The harness prints text tables and ASCII charts; this module writes the
same structured results to files so the figures can be re-plotted with
matplotlib/gnuplot/pgfplots outside this repository:

    from repro.experiments import figures, export
    out = figures.fig7(scale="quick", quiet=True)
    export.write_json(out, "fig7.json")
    export.write_csv_series("fig7_time.csv", out["x"],
                            out["panels"]["b) join time [s]"])
"""

from __future__ import annotations

import csv
import json
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:
    from collections.abc import Mapping, Sequence
    from pathlib import Path

__all__ = ["jsonable", "write_json", "write_csv_series"]


def jsonable(value: object) -> Any:
    """Recursively convert a result structure to JSON-serialisable types.

    Numpy scalars/arrays become Python numbers/lists; objects that are
    not data (simulation runners and the like) are dropped; mapping keys
    are stringified.
    """
    import numpy as np

    if isinstance(value, dict):
        out = {}
        for key, item in value.items():
            converted = jsonable(item)
            if converted is not _DROP:
                out[str(key)] = converted
        return out
    if isinstance(value, (list, tuple)):
        converted = [jsonable(item) for item in value]
        return [item for item in converted if item is not _DROP]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.ndarray):
        return value.tolist()
    return _DROP


class _Drop:
    """Sentinel: a value with no JSON representation (dropped silently)."""

    def __repr__(self) -> str:
        return "<drop>"


_DROP = _Drop()


def write_json(result: object, path: str | Path, indent: int = 1) -> None:
    """Write one experiment's structured result dict to a JSON file."""
    with open(path, "w") as handle:
        json.dump(jsonable(result), handle, indent=indent)


def write_csv_series(
    path: str | Path,
    x_values: Sequence[object],
    series_by_name: Mapping[str, Sequence[object]],
    x_label: str = "x",
) -> None:
    """Write aligned series (one column per algorithm) to a CSV file.

    ``None`` entries (the harness's DNF marker) become empty cells.
    """
    names = list(series_by_name)
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow([x_label] + names)
        for k, x in enumerate(x_values):
            row = [x]
            for name in names:
                values = series_by_name[name]
                value = values[k] if k < len(values) else None
                row.append("" if value is None else value)
            writer.writerow(row)
