"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import (
    make_clustered_dataset,
    make_neural_dataset,
    make_uniform_dataset,
)
from repro.geometry import brute_force_pairs, pack_pairs, unique_pairs


def random_boxes(rng, n, span=100.0, width_low=1.0, width_high=8.0):
    """Random boxes with varied extents for geometry-level tests."""
    centers = rng.uniform(0.0, span, size=(n, 3))
    widths = rng.uniform(width_low, width_high, size=(n, 3))
    return centers - widths / 2.0, centers + widths / 2.0


def oracle_keys(lo, hi):
    """Canonical packed pair keys from the brute-force oracle."""
    i_idx, j_idx = brute_force_pairs(lo, hi)
    return pack_pairs(i_idx, j_idx, lo.shape[0])


def assert_matches_oracle(algorithm, dataset):
    """Run ``algorithm`` on ``dataset`` and compare exactly to the oracle.

    Checks both set equality *and* that the algorithm emitted no
    duplicate pairs (emitted count equals unique count).
    """
    result = algorithm.step(dataset)
    n = len(dataset)
    got_i, got_j = unique_pairs(*result.pairs, n)
    lo, hi = dataset.boxes()
    exp_i, exp_j = brute_force_pairs(lo, hi)
    got = pack_pairs(got_i, got_j, n)
    exp = pack_pairs(exp_i, exp_j, n)
    assert np.array_equal(got, exp), (
        f"{algorithm.name}: result mismatch: got {got.size} pairs, "
        f"expected {exp.size}; missing={np.setdiff1d(exp, got)[:10]}, "
        f"spurious={np.setdiff1d(got, exp)[:10]}"
    )
    assert result.n_results == exp.size, (
        f"{algorithm.name}: emitted {result.n_results} pairs but only "
        f"{exp.size} unique results exist (duplicate emissions)"
    )


@pytest.fixture
def rng():
    return np.random.default_rng(1234)


@pytest.fixture
def uniform_small():
    """Dense uniform dataset: 400 objects, width 15, 120-unit cube."""
    return make_uniform_dataset(
        400, width=15.0, bounds=(np.zeros(3), np.full(3, 120.0)), seed=7
    )


@pytest.fixture
def uniform_varied():
    """Uniform dataset with varied object widths (13–17)."""
    return make_uniform_dataset(
        300,
        width_range=(13.0, 17.0),
        bounds=(np.zeros(3), np.full(3, 120.0)),
        seed=11,
    )


@pytest.fixture
def clustered_small():
    """Skewed dataset: 300 objects in two tight clusters."""
    dataset, _labels = make_clustered_dataset(
        300,
        n_clusters=2,
        sd=6.0,
        width=5.0,
        bounds=(np.zeros(3), np.full(3, 200.0)),
        seed=3,
    )
    return dataset


@pytest.fixture
def neural_small():
    """Synthetic neural dataset: 600 branch segments."""
    dataset, _labels = make_neural_dataset(600, object_volume=15.0, seed=5)
    return dataset
