"""Nested-loop self-join: the quadratic, index-free baseline.

Evaluates the overlap predicate for every one of the ``n (n - 1) / 2``
object pairs.  The paper uses it in Figure 2 as the floor that indexed
approaches degenerate towards when join selectivity grows.  The
predicate evaluation is blocked and vectorised, but the test count is
the exact quadratic number.
"""

from __future__ import annotations

import numpy as np

from repro.geometry import mbr
from repro.joins.base import SpatialJoinAlgorithm

from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.datasets import SpatialDataset
    from repro.engine import Executor
    from repro.geometry import PairAccumulator

__all__ = ["NestedLoopJoin"]


class NestedLoopJoin(SpatialJoinAlgorithm):
    """Exhaustive pairwise comparison; no index, no build phase."""

    name = "nested-loop"

    def __init__(self, count_only: bool = False, chunk_size: int = 1024, executor: Executor | None = None) -> None:
        super().__init__(count_only=count_only, executor=executor)
        if chunk_size <= 0:
            raise ValueError(f"chunk_size must be positive, got {chunk_size}")
        self.chunk_size = chunk_size

    def _build(self, dataset: SpatialDataset) -> None:
        # No index to build.
        return None

    def _join(self, dataset: SpatialDataset, accumulator: PairAccumulator) -> None:
        lo, hi = dataset.boxes()
        n = len(dataset)
        for start in range(0, n, self.chunk_size):
            stop = min(start + self.chunk_size, n)
            block = mbr.overlap_matrix(
                lo[start:stop], hi[start:stop], lo[start:], hi[start:]
            )
            bi, bj = np.nonzero(block)
            keep = bj > bi
            accumulator.extend_canonical(bi[keep] + start, bj[keep] + start)
        return n * (n - 1) // 2

    def memory_footprint(self) -> int:
        return 0
