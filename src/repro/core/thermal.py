"""THERMAL-JOIN: hot-spot based spatial self-join for dynamic workloads.

This is the paper's primary contribution (Section 4), assembled from the
substrates in this package:

1. **Index building** (§4.1) — the :class:`~repro.core.pgrid.PGrid`
   assigns every object to exactly one cell by its center (no
   replication), keeps only non-empty cells in a linked-hash table and
   wires hyperlinks for the external join.
2. **Joining** (§4.2) — per occupied cell, an *external join* against
   the hyperlinked half neighbourhood (optimized plane sweep with the
   enclosure shortcut) and an *internal join*: hot-spot cells emit all
   object combinations without a single overlap test, other cells are
   subdivided by a throw-away :class:`~repro.core.tgrid.TGrid` whose
   cells are hot spots by construction.
3. **Index maintenance** (§4.3) — cells are recycled across time steps,
   vacant cells garbage-collected at the 35 % threshold, and the grid
   resolution is self-tuned by hill climbing on the per-step cost
   (:class:`~repro.core.tuning.HillClimbingTuner`).

Example
-------
>>> from repro.datasets import make_uniform_workload
>>> from repro.core import ThermalJoin
>>> dataset, motion = make_uniform_workload(2000, width=15.0,
...     bounds=((0, 0, 0), (200, 200, 200)), seed=1)
>>> join = ThermalJoin()
>>> result = join.step(dataset)       # time step 0
>>> motion.step(dataset)              # simulation moves all objects
>>> result = join.step(dataset)       # incremental refresh + join
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.cells import half_neighborhood_offsets, pack_cell_id_scalar
from repro.core.pgrid import PGrid
from repro.core.tgrid import TGrid
from repro.core.tuning import HillClimbingTuner
from repro.engine import (
    DEFAULT_PARTITION_TASKS,
    CellPairSweepTask,
    ChurnPolicy,
    GroupCrossJoinTask,
    GroupSelfJoinTask,
    HotCellsTask,
    JoinPlan,
    JoinTask,
    chunk_by_volume,
    execute_delta_step,
    incremental_from_env,
)
from repro.geometry import MaintainedPairSet
from repro.joins.base import SpatialJoinAlgorithm

from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:
    from collections.abc import Mapping

    from repro.core.cells import PGridCell
    from repro.datasets import SpatialDataset
    from repro.datasets.delta import MotionDelta
    from repro.engine import Executor
    from repro.geometry import PairAccumulator
    from repro.joins.base import JoinResult

__all__ = ["ThermalJoin", "TGridCellsTask"]

# Weights of the deterministic operation-count cost model (used when
# ``cost_model="operations"``): one unit per overlap test, plus charges
# for cell-pair join calls, cell creation, cell visits and result
# emission.  Coarse by design — it only needs to rank resolutions the
# same way wall time does, machine-independently.
_OPS_CELL_PAIR = 2.0
_OPS_CELL_CREATED = 8.0
_OPS_CELL_VISIT = 2.0
_OPS_RESULT = 0.05


class TGridCellsTask(JoinTask):
    """Internal join of the dense cells through a throw-away T-Grid.

    The T-Grid object accumulates diagnostics (``fallbacks``,
    ``peak_cells``) across the step, so this stays one task and is not
    ``process_safe`` — the process executor runs it inline in the parent
    while the pure-array tasks are out on the pool.
    """

    phase = "internal"
    process_safe = False

    def __init__(
        self,
        tgrid: TGrid,
        cells: list[PGridCell],
        centers: np.ndarray,
        widths: np.ndarray,
    ) -> None:
        self.tgrid = tgrid
        self.cells = cells
        self.centers = centers
        self.widths = widths

    def run(self, ctx: Mapping[str, np.ndarray], accumulator: PairAccumulator) -> dict[str, int]:
        tests, shortcut_pairs = self.tgrid.join_cells(
            self.cells, ctx["lo"], ctx["hi"], self.centers, self.widths, accumulator
        )
        return {"overlap_tests": int(tests), "shortcut_pairs": int(shortcut_pairs)}


class ThermalJoin(SpatialJoinAlgorithm):
    """The THERMAL-JOIN algorithm.

    Parameters
    ----------
    resolution:
        Fixed normalized P-Grid resolution ``r`` (cell width = ``r`` ×
        largest object width).  ``None`` (default) enables the paper's
        self-tuning: no parameter sweep is needed (§5.1.2).
    tuner:
        Optional pre-configured :class:`HillClimbingTuner`; ignored when
        ``resolution`` is fixed.
    gc_threshold:
        Vacant-cell fraction triggering garbage collection (paper: 0.35).
    cost_model:
        ``"operations"`` (default) — tune on a deterministic,
        machine-independent operation count; ``"time"`` — tune on wall
        time, the paper's exact protocol (prefer it on a quiet dedicated
        machine; on shared hardware timing noise can spuriously trip the
        10 % drift trigger).
    count_only:
        Count results without materialising pairs.
    tgrid_max_cells_per_object:
        Safety budget for degenerate T-Grids (see :class:`TGrid`).
    tgrid_min_objects:
        Non-hot-spot cells below this population take a plain in-cell
        plane sweep instead of a T-Grid (building a grid for a handful
        of objects costs more than it saves; the T-Grid's target — the
        paper's dense-cell degeneration — needs a large population).
    hot_spots:
        Ablation knob: disable the hot-spot concept entirely — every
        cell's internal join runs as a plane sweep (no combinatorial
        emits, no T-Grids).  Results are identical; cost is not.
    enclosure_shortcut:
        Ablation knob: disable the external join's enclosure shortcut.
    incremental:
        Ablation knob: disable incremental maintenance — the P-Grid is
        rebuilt from scratch every step (the "throw-away index"
        strategy of the static baselines).
    pair_maintenance:
        Maintain the *result* across steps, not just the index: when a
        :class:`~repro.datasets.delta.MotionDelta` arrives through
        :meth:`step_delta`, pairs incident to moved objects are dropped
        and only the moved-incident candidates re-verified; pairs
        between settled objects are reused verbatim.  The maintained set
        is bit-identical to a full re-join at every step.  ``None``
        (default) consults the ``REPRO_INCREMENTAL`` environment
        variable; ``True``/``False`` override it.
    churn_threshold:
        Fixed moved-fraction threshold above which :meth:`step_delta`
        falls back to a full re-join.  ``None`` (default) uses an
        observed, adaptive :class:`~repro.engine.ChurnPolicy` that
        learns the break-even point from measured operation costs;
        ``0.0`` forces a fallback whenever anything moved.
    memory_quota_bytes:
        Optional cap on the P-Grid footprint — the improvement the paper
        sketches in §6.3 ("avoiding a very fine resolution grid that
        would exceed a memory quota given by the user").  Before a build
        the projected footprint of the requested resolution is checked
        and the grid coarsened just enough to fit; the tuner simply
        observes the resulting costs, so it converges within the
        quota-feasible region.
    n_workers:
        Back-compat worker count (§2.1: "THERMAL-JOIN ... can be
        parallelized like the aforementioned approaches"; cell pairs are
        independent work units).  ``n_workers > 1`` with no explicit
        ``executor`` selects a thread executor of that size.  Results
        and statistics are identical to the serial run.
    executor:
        Engine executor for the verify stage (see
        :class:`~repro.joins.base.SpatialJoinAlgorithm`).
    """

    name = "thermal-join"

    def __init__(
        self,
        resolution: float | None = None,
        tuner: HillClimbingTuner | None = None,
        gc_threshold: float = 0.35,
        cost_model: str = "operations",
        count_only: bool = False,
        tgrid_max_cells_per_object: int = 16,
        tgrid_min_objects: int = 24,
        hot_spots: bool = True,
        enclosure_shortcut: bool = True,
        incremental: bool = True,
        pair_maintenance: bool | None = None,
        churn_threshold: float | None = None,
        memory_quota_bytes: int | None = None,
        n_workers: int = 1,
        executor: Executor | str | None = None,
    ) -> None:
        if n_workers < 1:
            raise ValueError(f"n_workers must be at least 1, got {n_workers}")
        if executor is None and n_workers > 1:
            executor = f"thread:{int(n_workers)}"
        super().__init__(count_only=count_only, executor=executor)
        if memory_quota_bytes is not None and memory_quota_bytes <= 0:
            raise ValueError(
                f"memory_quota_bytes must be positive, got {memory_quota_bytes}"
            )
        if cost_model not in ("time", "operations"):
            raise ValueError(f"unknown cost_model {cost_model!r}")
        if resolution is not None and resolution <= 0:
            raise ValueError(f"resolution must be positive, got {resolution}")
        self.resolution = resolution
        self.tuner = None
        if resolution is None:
            self.tuner = tuner if tuner is not None else HillClimbingTuner()
        self.gc_threshold = gc_threshold
        self.cost_model = cost_model
        self.hot_spots = bool(hot_spots)
        self.enclosure_shortcut = bool(enclosure_shortcut)
        self.incremental = bool(incremental)
        self.memory_quota_bytes = memory_quota_bytes
        self.n_workers = int(n_workers)
        if tgrid_min_objects < 2:
            raise ValueError(
                f"tgrid_min_objects must be at least 2, got {tgrid_min_objects}"
            )
        self.tgrid_min_objects = int(tgrid_min_objects)
        self.pgrid: PGrid | None = None
        self.tgrid = TGrid(max_cells_per_object=tgrid_max_cells_per_object)
        #: Per-step diagnostics (resolution used, hot-spot counts, ...).
        self.last_step_info: dict[str, object] = {}
        self._boxes = None
        self._build_seconds = 0.0
        if pair_maintenance is None:
            pair_maintenance = incremental_from_env()
        self.pair_maintenance = bool(pair_maintenance)
        if churn_threshold is None:
            self.churn = ChurnPolicy()
        else:
            self.churn = ChurnPolicy(threshold=churn_threshold, adaptive=False)
        #: The result set carried across steps (pair-maintenance mode).
        self._maintained: MaintainedPairSet | None = None
        self._maintained_uid: int | None = None
        self._maintained_version: int | None = None
        self._incr: dict[str, object] = {
            "mode": "off",
            "moved_fraction": 0.0,
            "pairs_reused": 0,
            "pairs_dropped": 0,
            "pairs_reverified": 0,
            "pairs_added": 0,
            "maintained_pairs": 0,
            "fallbacks": 0,
            "full_steps": 0,
            "incremental_steps": 0,
            "churn_threshold": self.churn.threshold,
        }
        self.metrics.register("pgrid", self._pgrid_metrics)
        self.metrics.register("tgrid", self._tgrid_metrics)
        self.metrics.register("tuner", self._tuner_metrics)
        self.metrics.register("incremental", self._incremental_metrics)

    # ------------------------------------------------------------------
    # Metrics providers (read-only; snapshot each step by the engine)
    # ------------------------------------------------------------------
    def _pgrid_metrics(self) -> dict[str, object] | None:
        pgrid = self.pgrid
        if pgrid is None:
            return None
        return {
            "cell_width": pgrid.cell_width,
            "cells": len(pgrid.cells),
            "occupied_cells": len(pgrid.occupied),
            "vacant_cells": pgrid.n_vacant,
            "cells_created": pgrid.cells_created,
            "cells_recycled": pgrid.cells_recycled,
            "gc_runs": pgrid.gc_runs,
            "layers": pgrid.layers,
        }

    def _tgrid_metrics(self) -> dict[str, object]:
        return {
            "fallbacks": self.tgrid.fallbacks,
            "peak_cells": self.tgrid.peak_cells,
        }

    def _tuner_metrics(self) -> dict[str, object]:
        values = {"resolution": self.current_resolution}
        if self.tuner is not None:
            values.update(
                converged=self.tuner.converged,
                tuning_steps=self.tuner.tuning_steps,
                retunes=self.tuner.retunes,
                observations=len(self.tuner.history),
            )
        return values

    def _incremental_metrics(self) -> dict[str, object]:
        values = dict(self._incr)
        values["churn_threshold"] = self.churn.threshold
        return values

    # ------------------------------------------------------------------
    # Build phase
    # ------------------------------------------------------------------
    @property
    def current_resolution(self) -> float:
        """The normalized resolution the next step will use."""
        if self.resolution is not None:
            return float(self.resolution)
        return self.tuner.current_r

    @staticmethod
    def _per_cell_bytes() -> int:
        """Modelled cost of one cell: record + one-layer link budget + bucket."""
        from repro.core.pgrid import CELL_RECORD_BYTES

        return CELL_RECORD_BYTES + 13 * 8 + 8

    def _projected_footprint(self, dataset: SpatialDataset, cell_width: float) -> float:
        """Upper estimate of the P-Grid footprint at ``cell_width``.

        Occupied cells are bounded by both the object count and the
        number of cells covering the domain; the per-cell cost includes
        the record and a one-layer hyperlink budget.
        """
        lo_b, hi_b = dataset.bounds
        grid_cells = float(np.prod(np.ceil((hi_b - lo_b) / cell_width) + 1))
        cells = min(float(len(dataset)), grid_cells)
        return cells * self._per_cell_bytes() + len(dataset) * 8

    def _footprint_floor(self, dataset: SpatialDataset) -> float:
        """The projected footprint's infimum over all cell widths.

        Coarsening can shrink the grid to a single cell but never below
        it, and the per-object list entries are resolution-independent —
        so no resolution fits a quota under this floor.
        """
        return self._per_cell_bytes() + len(dataset) * 8

    def _quota_cell_width(self, dataset: SpatialDataset, cell_width: float) -> float:
        """Coarsen ``cell_width`` until the projected footprint fits.

        Raises :class:`ValueError` when the quota is infeasible: the
        projected footprint never drops below :meth:`_footprint_floor`
        however coarse the grid, so without this check an under-floor
        quota would coarsen forever (the §6.3 hang this guards against).
        """
        if self.memory_quota_bytes is None:
            return cell_width
        floor = self._footprint_floor(dataset)
        if len(dataset) and self.memory_quota_bytes < floor:
            raise ValueError(
                f"memory_quota_bytes={self.memory_quota_bytes} is infeasible "
                f"for {len(dataset)} objects: even a single-cell grid needs "
                f"~{int(floor)} bytes under the footprint model; raise the "
                "quota or shrink the dataset"
            )
        while (
            self._projected_footprint(dataset, cell_width) > self.memory_quota_bytes
        ):
            cell_width *= 1.25
        return cell_width

    def _build(self, dataset: SpatialDataset) -> None:
        t0 = time.perf_counter()
        lo, hi = dataset.boxes()
        self._boxes = (lo, hi)
        max_width = dataset.max_width
        cell_width = self._quota_cell_width(
            dataset, self.current_resolution * max_width
        )
        if not self.incremental:
            self.pgrid = None  # ablation: rebuild from scratch each step
        if self.pgrid is None or abs(self.pgrid.cell_width - cell_width) > 1e-12:
            # First build, or the resolution was re-tuned: the paper notes
            # every resolution change requires a from-scratch rebuild.
            origin, _ = dataset.bounds
            self.pgrid = PGrid(cell_width, origin, gc_threshold=self.gc_threshold)
        cells_created_before = self.pgrid.cells_created
        self.pgrid.refresh(dataset.centers, lo[:, 0], dataset.widths, max_width)
        self._cells_created_this_step = self.pgrid.cells_created - cells_created_before
        self._build_seconds = time.perf_counter() - t0

    # ------------------------------------------------------------------
    # Join phase (Algorithm 2), as an engine plan
    # ------------------------------------------------------------------
    def plan(self, dataset: SpatialDataset) -> JoinPlan:
        """Partition the step into external, hot-spot, sweep and T-Grid tasks.

        The external join's hyperlinked cell pairs are split into
        volume-balanced :class:`CellPairSweepTask` slices; hot-spot cells
        emit through one :class:`HotCellsTask`; small non-hot cells sweep
        through one :class:`GroupSelfJoinTask`; dense cells go through
        one :class:`TGridCellsTask`.  The split is deterministic, so
        every executor reproduces the serial run's pair set and
        overlap-test total exactly.
        """
        lo, hi = self._boxes
        pgrid = self.pgrid
        context = {
            "lo": lo,
            "hi": hi,
            "cat": pgrid.cat,
            "starts": pgrid.cell_starts,
            "stops": pgrid.cell_stops,
            "center_lo": pgrid.cell_center_lo,
            "center_hi": pgrid.cell_center_hi,
        }
        tasks = []
        sizes = pgrid.cell_stops - pgrid.cell_starts

        # ---- External join: all hyperlinked cell pairs, chunked. ----
        pair_a = []
        pair_b = []
        for cell in pgrid.occupied:
            slot = cell.slot
            for neighbor in cell.hyperlinks:
                if neighbor.slot >= 0:
                    pair_a.append(slot)
                    pair_b.append(neighbor.slot)
        pair_a = np.asarray(pair_a, dtype=np.int64)
        pair_b = np.asarray(pair_b, dtype=np.int64)
        cell_pair_joins = int(pair_a.size)
        if pair_a.size:
            weights = sizes[pair_a] * sizes[pair_b]
            for start, stop in chunk_by_volume(weights, DEFAULT_PARTITION_TASKS):
                tasks.append(
                    CellPairSweepTask(
                        pair_a=pair_a[start:stop],
                        pair_b=pair_b[start:stop],
                        enclosure_shortcut=self.enclosure_shortcut,
                    )
                )

        # ---- Internal join: hot spots, small-cell sweeps, T-Grids. ----
        multi = sizes > 1
        hot_spot_cells = 0
        tgrid_cells = 0
        if self.hot_spots:
            spread_ok = (
                (pgrid.cell_center_hi - pgrid.cell_center_lo) < pgrid.cell_min_width
            ).all(axis=1)
            hot = np.logical_and(multi, spread_ok)
            hot_slots = np.flatnonzero(hot)
            hot_spot_cells = int(hot_slots.size)
            if hot_slots.size:
                tasks.append(HotCellsTask(hot_slots=hot_slots))
            not_hot = np.logical_and(multi, ~spread_ok)
            # A T-Grid only pays off once the cell population is large
            # enough to amortise building it; small non-hot-spot cells
            # take the in-cell plane sweep in one batched task (their
            # sweep cannot "degenerate into a nested-loop join" — the
            # degeneration the paper worries about needs a dense cell).
            large = np.logical_and(not_hot, sizes >= self.tgrid_min_objects)
            small_slots = np.flatnonzero(np.logical_and(not_hot, ~large))
            if small_slots.size:
                tasks.append(
                    GroupSelfJoinTask(
                        groups=small_slots, count="x-sweep", phase="internal"
                    )
                )
            tgrid_slots = np.flatnonzero(large)
            tgrid_cells = int(tgrid_slots.size)
            if tgrid_cells:
                occupied = pgrid.occupied
                tasks.append(
                    TGridCellsTask(
                        self.tgrid,
                        [occupied[slot] for slot in tgrid_slots],
                        dataset.centers,
                        dataset.widths,
                    )
                )
        else:
            # Ablation: plain plane sweep inside every cell (no hot spots,
            # no T-Grids).  Cell object lists are already x-sorted.
            sweep_slots = np.flatnonzero(multi)
            if sweep_slots.size:
                tasks.append(
                    GroupSelfJoinTask(
                        groups=sweep_slots, count="x-sweep", phase="internal"
                    )
                )

        def on_complete(results):
            shortcut_pairs = sum(
                int(r.counters.get("shortcut_pairs", 0)) for r in results
            )
            self.last_step_info = {
                "resolution": self.current_resolution,
                "cell_width": self.pgrid.cell_width,
                "occupied_cells": len(self.pgrid.occupied),
                "total_cells": len(self.pgrid.cells),
                "vacant_cells": self.pgrid.n_vacant,
                "hot_spot_cells": hot_spot_cells,
                "tgrid_cells": tgrid_cells,
                "tgrid_fallbacks": self.tgrid.fallbacks,
                "cell_pair_joins": cell_pair_joins,
                "shortcut_pairs": shortcut_pairs,
                "cells_created": self._cells_created_this_step,
                "gc_runs": self.pgrid.gc_runs,
                "layers": self.pgrid.layers,
            }

        return JoinPlan(context=context, tasks=tasks, on_complete=on_complete)

    # ------------------------------------------------------------------
    # Delta join phase: re-verify only moved-incident candidates
    # ------------------------------------------------------------------
    def delta_plan(self, dataset: SpatialDataset, delta: MotionDelta) -> JoinPlan:
        """Partition the re-verification of moved-incident candidates.

        Objects are classified moved/settled from the delta; the refreshed
        P-Grid's per-cell object lists are split into a *moved* grouping
        and a *settled* grouping (both inherit the in-cell x-sort).  Any
        pair with a moved endpoint has centers closer than the largest
        object width per dimension, so its cells are at most
        ``pgrid.layers`` apart — exactly the neighbourhood the full
        join's hyperlinks cover.  Three task families emit every such
        candidate exactly once:

        * moved × settled over each moved cell's full neighbourhood
          (including its own cell; settled groups never initiate);
        * moved × moved across distinct cells, once per unordered cell
          pair via the half-neighbourhood offsets;
        * moved × moved within a cell, as a strict-upper-triangle
          self-join.

        All tasks are pure functions of ndarray context (process-safe),
        chunked deterministically, with x-sweep test accounting — so
        executors, retries and fault injection behave exactly as on the
        full plan.
        """
        lo, hi = self._boxes
        pgrid = self.pgrid
        cat = pgrid.cat
        starts = pgrid.cell_starts
        stops = pgrid.cell_stops
        moved_mask = delta.moved_mask()
        moved_in_cat = moved_mask[cat]
        csum = np.concatenate([[0], np.cumsum(moved_in_cat)]).astype(np.int64)
        moved_counts = csum[stops] - csum[starts]
        settled_counts = (stops - starts) - moved_counts
        mstops = np.cumsum(moved_counts).astype(np.int64)
        sstops = np.cumsum(settled_counts).astype(np.int64)
        context = {
            "lo": lo,
            "hi": hi,
            "mcat": cat[moved_in_cat],
            "mstarts": mstops - moved_counts,
            "mstops": mstops,
            "scat": cat[~moved_in_cat],
            "sstarts": sstops - settled_counts,
            "sstops": sstops,
        }

        # Enumerate candidate cell pairs around the cells holding moved
        # objects.  Slot order and offset order are fixed, so the pair
        # lists — and the task chunking below — are deterministic.
        cells = pgrid.cells
        occupied = pgrid.occupied
        offsets = half_neighborhood_offsets(pgrid.layers)
        has_moved = moved_counts > 0
        has_settled = settled_counts > 0
        ms_a: list[int] = []  # moved group × settled group
        ms_b: list[int] = []
        mm_a: list[int] = []  # moved group × moved group, distinct cells
        mm_b: list[int] = []
        for slot in np.flatnonzero(has_moved):
            slot = int(slot)
            cx, cy, cz = occupied[slot].coords
            if has_settled[slot]:
                ms_a.append(slot)
                ms_b.append(slot)
            for ox, oy, oz in offsets:
                front = cells.get(pack_cell_id_scalar(cx + ox, cy + oy, cz + oz))
                if front is not None and front.slot >= 0:
                    if has_settled[front.slot]:
                        ms_a.append(slot)
                        ms_b.append(front.slot)
                    if has_moved[front.slot]:
                        # Unordered moved-cell pair, seen once: the back
                        # scan of the other cell cannot re-reach it.
                        mm_a.append(slot)
                        mm_b.append(front.slot)
                back = cells.get(pack_cell_id_scalar(cx - ox, cy - oy, cz - oz))
                if back is not None and back.slot >= 0 and has_settled[back.slot]:
                    ms_a.append(slot)
                    ms_b.append(back.slot)

        tasks: list[JoinTask] = []

        def cross_tasks(pair_a, pair_b, b_counts, b_keys):
            pair_a = np.asarray(pair_a, dtype=np.int64)
            pair_b = np.asarray(pair_b, dtype=np.int64)
            if not pair_a.size:
                return
            weights = moved_counts[pair_a] * b_counts[pair_b]
            for start, stop in chunk_by_volume(weights, DEFAULT_PARTITION_TASKS):
                tasks.append(
                    GroupCrossJoinTask(
                        pair_a=pair_a[start:stop],
                        pair_b=pair_b[start:stop],
                        count="x-sweep",
                        a_keys=("mcat", "mstarts", "mstops"),
                        b_keys=b_keys,
                        phase="reverify",
                    )
                )

        cross_tasks(ms_a, ms_b, settled_counts, ("scat", "sstarts", "sstops"))
        cross_tasks(mm_a, mm_b, moved_counts, ("mcat", "mstarts", "mstops"))
        self_slots = np.flatnonzero(moved_counts > 1)
        if self_slots.size:
            tasks.append(
                GroupSelfJoinTask(
                    groups=self_slots,
                    count="x-sweep",
                    keys=("mcat", "mstarts", "mstops"),
                    phase="reverify",
                )
            )

        moved_cells = int(has_moved.sum())
        cell_pair_joins = len(ms_a) + len(mm_a)

        def on_complete(results):
            self.last_step_info = {
                "mode": "incremental",
                "resolution": self.current_resolution,
                "cell_width": self.pgrid.cell_width,
                "occupied_cells": len(self.pgrid.occupied),
                "total_cells": len(self.pgrid.cells),
                "vacant_cells": self.pgrid.n_vacant,
                "moved_objects": delta.n_moved,
                "moved_cells": moved_cells,
                "hot_spot_cells": 0,
                "tgrid_cells": 0,
                "tgrid_fallbacks": self.tgrid.fallbacks,
                "cell_pair_joins": cell_pair_joins,
                "shortcut_pairs": 0,
                "cells_created": self._cells_created_this_step,
                "gc_runs": self.pgrid.gc_runs,
                "layers": self.pgrid.layers,
            }

        return JoinPlan(context=context, tasks=tasks, on_complete=on_complete)

    def _phase_seconds(self) -> dict[str, float]:
        # The engine adds each task's wall time onto its phase; only the
        # build phase is timed here.
        return {
            "building": self._build_seconds,
            "internal": 0.0,
            "external": 0.0,
        }

    # ------------------------------------------------------------------
    # Step driver with self-tuning and pair-set maintenance
    # ------------------------------------------------------------------
    def step(self, dataset: SpatialDataset) -> JoinResult:
        if self.pair_maintenance:
            return self._full_step(dataset, mode="full")
        return self._plain_step(dataset)

    def _plain_step(self, dataset: SpatialDataset) -> JoinResult:
        """One from-scratch join step, feeding the resolution tuner."""
        result = super().step(dataset)
        if self.tuner is not None:
            cost = (
                result.stats.total_seconds
                if self.cost_model == "time"
                else self._operations_cost(result)
            )
            resolution_changed = self.tuner.observe(cost)
            if resolution_changed:
                # Force a from-scratch rebuild at the new resolution.
                self.pgrid = None
        return result

    def _full_step(self, dataset: SpatialDataset, mode: str) -> JoinResult:
        """Full re-join that (re)seeds the maintained pair set.

        Pairs must be materialised to seed the set, so ``count_only`` is
        lifted around the engine step and the returned result re-honours
        it.  The seeded state is re-snapshot into ``index_counters`` so
        the step's record already shows the maintained-set size.
        """
        from repro.joins.base import JoinResult

        self._incr.update(
            mode=mode,
            pairs_reused=0,
            pairs_dropped=0,
            pairs_reverified=0,
            pairs_added=0,
        )
        self._incr["full_steps"] = int(self._incr["full_steps"]) + 1
        was_count_only = self.count_only
        self.count_only = False
        try:
            result = self._plain_step(dataset)
        finally:
            self.count_only = was_count_only
        assert result.pairs is not None
        self._maintained = MaintainedPairSet(len(dataset), *result.pairs)
        self._maintained_uid = dataset.uid
        self._maintained_version = dataset.version
        self.churn.observe_full(self._operations_cost(result))
        self._incr["maintained_pairs"] = len(self._maintained)
        # Refresh only the incremental entry: re-snapshotting every
        # provider here would run *after* a possible tuner retune
        # dropped the P-Grid, wiping the engine-time pgrid counters.
        result.stats.record_index_counters(
            {
                **result.stats.index_counters,
                "incremental": self._incremental_metrics(),
            }
        )
        return JoinResult(
            n_results=result.n_results,
            stats=result.stats,
            pairs=None if was_count_only else result.pairs,
        )

    def _delta_applicable(self, dataset: SpatialDataset, delta: MotionDelta) -> bool:
        """Whether ``delta`` bridges the maintained state to ``dataset``.

        The delta must describe exactly the ``maintained version →
        current version`` transition of *this* dataset instance, and the
        tuner must be done moving the resolution (while it still climbs,
        full steps are required anyway so it can observe comparable
        costs; drift-retune steps re-enter that state).
        """
        return (
            self._maintained is not None
            and delta.dataset_uid == dataset.uid
            and self._maintained_uid == dataset.uid
            and delta.n_objects == len(dataset)
            and delta.base_version == self._maintained_version
            and delta.version == dataset.version
            and (self.tuner is None or self.tuner.converged)
        )

    def step_delta(self, dataset: SpatialDataset, delta: MotionDelta | None) -> JoinResult:
        """Maintain the pair set through ``delta`` instead of re-joining.

        Falls back to a full (seeding) step when maintenance is off, the
        delta does not match the maintained state, or the churn policy
        rules the moved fraction too high to pay off.
        """
        if not self.pair_maintenance:
            return self.step(dataset)
        if delta is None or not self._delta_applicable(dataset, delta):
            self._incr["moved_fraction"] = (
                0.0 if delta is None else delta.moved_fraction
            )
            return self._full_step(dataset, mode="full")
        moved_fraction = delta.moved_fraction
        self._incr["moved_fraction"] = moved_fraction
        if not self.churn.admits(moved_fraction):
            self._incr["fallbacks"] = int(self._incr["fallbacks"]) + 1
            return self._full_step(dataset, mode="fallback")

        self._incr["mode"] = "incremental"
        self._incr["incremental_steps"] = int(self._incr["incremental_steps"]) + 1
        maintained = self._maintained
        assert maintained is not None
        result = execute_delta_step(
            self, dataset, delta, maintained, on_maintained=self._incr.update
        )
        self._maintained_version = delta.version
        # The tuner is NOT fed here: incremental costs are not comparable
        # with the full-join costs it climbs on.  The churn policy is —
        # that is exactly the signal it adapts its threshold from.
        self.churn.observe_incremental(
            float(result.stats.overlap_tests)
            + _OPS_RESULT * float(int(self._incr["pairs_reverified"])),
            moved_fraction,
        )
        return result

    def _operations_cost(self, result: JoinResult) -> float:
        """Deterministic cost signal for reproducible tuning."""
        info = self.last_step_info
        return (
            result.stats.overlap_tests
            + _OPS_CELL_PAIR * info.get("cell_pair_joins", 0)
            + _OPS_CELL_CREATED * info.get("cells_created", 0)
            + _OPS_CELL_VISIT * info.get("occupied_cells", 0)
            + _OPS_RESULT * result.n_results
        )

    def memory_footprint(self) -> int:
        if self.pgrid is None:
            return 0
        return self.pgrid.memory_footprint()

    # ------------------------------------------------------------------
    # Checkpoint / recovery protocol
    # ------------------------------------------------------------------
    def _config_fingerprint(self) -> dict[str, object]:
        """The configuration a checkpoint is only replayable under."""
        return {
            "resolution": self.resolution,
            "gc_threshold": self.gc_threshold,
            "cost_model": self.cost_model,
            "hot_spots": self.hot_spots,
            "enclosure_shortcut": self.enclosure_shortcut,
            "incremental": self.incremental,
            "pair_maintenance": self.pair_maintenance,
            "tgrid_min_objects": self.tgrid_min_objects,
        }

    def snapshot_state(self) -> tuple[dict[str, np.ndarray], dict[str, Any]]:
        """Full cross-step state: tuner, churn, grids, maintained pairs.

        Everything a resumed run needs to continue bit-identically: the
        tuner's climb state, the churn policy's observed estimates, the
        incremental counters, the T-Grid diagnostics, the maintained
        pair set (packed keys) and the P-Grid *structure* (rebuilding it
        from scratch would spike ``cells_created`` — a tuner cost input —
        and re-wire hyperlink direction, changing overlap-test counts).
        """
        arrays: dict[str, np.ndarray] = {}
        meta: dict[str, Any] = {
            "algorithm": self.name,
            "config": self._config_fingerprint(),
            "tuner": None if self.tuner is None else self.tuner.state_dict(),
            "churn": self.churn.state_dict(),
            "incr": dict(self._incr),
            "tgrid": {
                "fallbacks": self.tgrid.fallbacks,
                "peak_cells": self.tgrid.peak_cells,
            },
            "maintained": None,
            "pgrid": None,
        }
        if self._maintained is not None:
            arrays["maintained_keys"] = self._maintained.packed_keys()
            meta["maintained"] = {
                "n": self._maintained.n,
                "version": self._maintained_version,
            }
        if self.pgrid is not None:
            pgrid_arrays, pgrid_meta = self.pgrid.snapshot_state()
            for key, value in pgrid_arrays.items():
                arrays[f"pgrid/{key}"] = value
            meta["pgrid"] = pgrid_meta
        return arrays, meta

    def restore_state(
        self,
        arrays: dict[str, np.ndarray],
        meta: dict[str, Any],
        dataset: SpatialDataset,
    ) -> None:
        super().restore_state(arrays, meta, dataset)
        recorded = meta.get("config")
        if recorded != self._config_fingerprint():
            raise ValueError(
                "checkpoint was written under a different ThermalJoin "
                f"configuration: {recorded!r} != {self._config_fingerprint()!r}"
            )
        tuner_state = meta["tuner"]
        if (tuner_state is None) != (self.tuner is None):
            raise ValueError(
                "checkpoint tuner state does not match this instance's "
                "resolution mode"
            )
        if self.tuner is not None and tuner_state is not None:
            self.tuner.load_state_dict(tuner_state)
        self.churn.load_state_dict(meta["churn"])
        self._incr = dict(meta["incr"])
        self.tgrid.fallbacks = int(meta["tgrid"]["fallbacks"])
        self.tgrid.peak_cells = int(meta["tgrid"]["peak_cells"])

        maintained_meta = meta["maintained"]
        if maintained_meta is None:
            self._maintained = None
            self._maintained_uid = None
            self._maintained_version = None
        else:
            n = int(maintained_meta["n"])
            if n != len(dataset):
                raise ValueError(
                    f"maintained set was built over {n} objects but the "
                    f"restored dataset holds {len(dataset)}"
                )
            self._maintained = MaintainedPairSet.from_packed(
                n, arrays["maintained_keys"]
            )
            # The uid is process-local; the maintained set belongs to the
            # freshly reconstructed dataset by construction.
            self._maintained_uid = dataset.uid
            self._maintained_version = int(maintained_meta["version"])

        pgrid_meta = meta["pgrid"]
        if pgrid_meta is None:
            self.pgrid = None
        else:
            pgrid_arrays = {
                key.split("/", 1)[1]: value
                for key, value in arrays.items()
                if key.startswith("pgrid/")
            }
            lo, _hi = dataset.boxes()
            self.pgrid = PGrid.from_state(
                pgrid_arrays, pgrid_meta, dataset.centers, lo[:, 0], dataset.widths
            )

    def reset_for_retry(self) -> None:
        """Drop every cross-step structure before a from-scratch retry.

        A failure mid-``step_delta`` may have left the P-Grid refreshed
        but the maintained set half-patched; discarding both makes the
        retried step a clean seeding full join.
        """
        self.pgrid = None
        self._maintained = None
        self._maintained_uid = None
        self._maintained_version = None
