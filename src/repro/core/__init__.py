"""THERMAL-JOIN core: P-Grid, T-Grid, hot spots, self-tuning."""

from repro.core.cells import (
    PGridCell,
    half_neighborhood_offsets,
    pack_cell_id_scalar,
    pack_cell_ids,
    unpack_cell_id,
)
from repro.core.pgrid import PGrid
from repro.core.tgrid import TGrid
from repro.core.thermal import ThermalJoin
from repro.core.tuning import HillClimbingTuner

__all__ = [
    "ThermalJoin",
    "PGrid",
    "TGrid",
    "PGridCell",
    "HillClimbingTuner",
    "half_neighborhood_offsets",
    "pack_cell_ids",
    "pack_cell_id_scalar",
    "unpack_cell_id",
]
