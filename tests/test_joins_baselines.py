"""Correctness tests for all indexed baseline joins against the oracle."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import SpatialDataset, make_uniform_workload
from repro.geometry import brute_force_pairs, pack_pairs, unique_pairs
from repro.joins import (
    CRTreeJoin,
    EGOJoin,
    LooseOctreeJoin,
    MXCIFOctreeJoin,
    PBSMJoin,
    SynchronousRTreeJoin,
    TouchJoin,
)
from tests.conftest import assert_matches_oracle

INDEXED_ALGORITHMS = [
    PBSMJoin,
    EGOJoin,
    MXCIFOctreeJoin,
    LooseOctreeJoin,
    SynchronousRTreeJoin,
    CRTreeJoin,
    TouchJoin,
]


@pytest.mark.parametrize("algorithm_cls", INDEXED_ALGORITHMS)
class TestAgainstOracle:
    def test_uniform(self, algorithm_cls, uniform_small):
        assert_matches_oracle(algorithm_cls(), uniform_small)

    def test_varied_widths(self, algorithm_cls, uniform_varied):
        assert_matches_oracle(algorithm_cls(), uniform_varied)

    def test_clustered(self, algorithm_cls, clustered_small):
        assert_matches_oracle(algorithm_cls(), clustered_small)

    def test_neural(self, algorithm_cls, neural_small):
        assert_matches_oracle(algorithm_cls(), neural_small)

    def test_no_overlaps(self, algorithm_cls):
        centers = np.arange(27, dtype=np.float64).reshape(-1, 1) * 100.0
        centers = np.repeat(centers, 3, axis=1)
        ds = SpatialDataset(centers, 1.0)
        assert algorithm_cls().step(ds).n_results == 0

    def test_complete_clique(self, algorithm_cls):
        rng = np.random.default_rng(0)
        ds = SpatialDataset(rng.uniform(0, 0.5, size=(12, 3)), 10.0)
        assert algorithm_cls().step(ds).n_results == 12 * 11 // 2

    @pytest.mark.parametrize("n", [1, 2, 3, 5, 9, 17])
    def test_tiny_datasets(self, algorithm_cls, n):
        rng = np.random.default_rng(n)
        ds = SpatialDataset(rng.uniform(0, 10.0, size=(n, 3)), 3.0)
        assert_matches_oracle(algorithm_cls(), ds)

    def test_correct_across_simulation_steps(self, algorithm_cls):
        dataset, motion = make_uniform_workload(
            300, width=15.0, bounds=(np.zeros(3), np.full(3, 110.0)), seed=41
        )
        algo = algorithm_cls()
        n = len(dataset)
        for _ in range(4):
            result = algo.step(dataset)
            got = pack_pairs(*unique_pairs(*result.pairs, n), n)
            exp = pack_pairs(*brute_force_pairs(*dataset.boxes()), n)
            assert np.array_equal(got, exp)
            motion.step(dataset)

    def test_count_only_matches(self, algorithm_cls, uniform_small):
        full = algorithm_cls().step(uniform_small)
        counted = algorithm_cls(count_only=True).step(uniform_small)
        assert counted.n_results == full.n_results

    def test_footprint_positive(self, algorithm_cls, uniform_small):
        algo = algorithm_cls()
        result = algo.step(uniform_small)
        assert result.stats.memory_bytes > 0


class TestConfigurationValidation:
    def test_pbsm_rejects_bad_factor(self):
        with pytest.raises(ValueError):
            PBSMJoin(partition_factor=0.0)

    def test_ego_rejects_bad_epsilon(self):
        with pytest.raises(ValueError):
            EGOJoin(epsilon_factor=-1.0)

    def test_octree_rejects_bad_depth(self):
        with pytest.raises(ValueError):
            MXCIFOctreeJoin(max_depth=0)

    def test_loose_octree_rejects_negative_looseness(self):
        with pytest.raises(ValueError):
            LooseOctreeJoin(looseness=-0.1)

    def test_rtree_rejects_tiny_fanout(self, uniform_small):
        algo = SynchronousRTreeJoin(fanout=1)
        with pytest.raises(ValueError):
            algo.step(uniform_small)


class TestAlgorithmCharacteristics:
    """Behavioural properties the paper's discussion relies on."""

    def test_pbsm_replication_inflates_tests(self, uniform_small):
        # Duplicate tests across partitions: more tests than the sweep,
        # same results.
        from repro.joins import PlaneSweepJoin

        pbsm = PBSMJoin().step(uniform_small)
        sweep = PlaneSweepJoin().step(uniform_small)
        assert pbsm.n_results == sweep.n_results

    def test_crtree_smaller_than_rtree(self, uniform_small):
        # Quantization shrinks the footprint (the CR-Tree's design goal).
        r = SynchronousRTreeJoin(fanout=11)
        c = CRTreeJoin(fanout=11)
        r_result = r.step(uniform_small)
        c_result = c.step(uniform_small)
        assert c_result.stats.memory_bytes < r_result.stats.memory_bytes

    def test_crtree_never_fewer_node_visits(self, uniform_small):
        # Conservative quantized MBRs can only add overlap, never remove.
        r = SynchronousRTreeJoin(fanout=11).step(uniform_small)
        c = CRTreeJoin(fanout=11).step(uniform_small)
        assert c.stats.overlap_tests >= r.stats.overlap_tests

    def test_octree_root_pinning(self):
        # Objects straddling the central planes pin to the root: the
        # MX-CIF octree must still answer correctly (and pays for it).
        rng = np.random.default_rng(5)
        centers = rng.uniform(45.0, 55.0, size=(60, 3))  # around the center
        ds = SpatialDataset(centers, 12.0, bounds=(np.zeros(3), np.full(3, 100.0)))
        assert_matches_oracle(MXCIFOctreeJoin(), ds)

    def test_loose_octree_pushes_objects_deeper(self, uniform_small):
        # With looseness, strictly fewer objects stay near the root than
        # in the rigid MX-CIF tree, so fewer ancestor comparisons happen.
        rigid = MXCIFOctreeJoin().step(uniform_small)
        loose = LooseOctreeJoin(looseness=0.5).step(uniform_small)
        assert loose.n_results == rigid.n_results

    def test_touch_tests_below_octrees(self, uniform_small):
        # TOUCH "reduces the number of overlap tests considerably" (§2.1).
        touch = TouchJoin().step(uniform_small)
        octree = MXCIFOctreeJoin().step(uniform_small)
        assert touch.stats.overlap_tests < octree.stats.overlap_tests

    def test_ego_memory_lean(self, uniform_small):
        # EGO's single flat grid stays below the hierarchical loose
        # octree's footprint (§5.2.1: "no hierarchical structure is used,
        # making it memory efficient").
        ego = EGOJoin().step(uniform_small)
        loose = LooseOctreeJoin().step(uniform_small)
        assert ego.stats.memory_bytes < loose.stats.memory_bytes
