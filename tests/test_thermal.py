"""Correctness and behaviour tests for THERMAL-JOIN itself."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import HillClimbingTuner, ThermalJoin
from repro.datasets import (
    SpatialDataset,
    make_clustered_workload,
    make_neural_workload,
    make_uniform_dataset,
    make_uniform_workload,
)
from repro.geometry import brute_force_pairs, pack_pairs, unique_pairs
from tests.conftest import assert_matches_oracle


class TestAgainstOracle:
    @pytest.mark.parametrize("resolution", [0.3, 0.5, 1.0, 1.5, 2.0])
    def test_uniform_at_resolutions(self, resolution, uniform_small):
        assert_matches_oracle(ThermalJoin(resolution=resolution), uniform_small)

    def test_varied_widths(self, uniform_varied):
        assert_matches_oracle(ThermalJoin(resolution=1.0), uniform_varied)

    def test_clustered(self, clustered_small):
        assert_matches_oracle(ThermalJoin(resolution=1.0), clustered_small)

    def test_neural(self, neural_small):
        assert_matches_oracle(ThermalJoin(resolution=1.0), neural_small)

    def test_extreme_width_variation(self):
        # Widths spanning 20x: exercises T-Grids and the fallback path.
        ds = make_uniform_dataset(
            250,
            width_range=(1.0, 20.0),
            bounds=(np.zeros(3), np.full(3, 100.0)),
            seed=21,
        )
        assert_matches_oracle(ThermalJoin(resolution=1.0), ds)

    def test_self_tuning_remains_correct_across_steps(self):
        dataset, motion = make_uniform_workload(
            600, width=15.0, bounds=(np.zeros(3), np.full(3, 140.0)), seed=13
        )
        join = ThermalJoin(cost_model="operations")
        n = len(dataset)
        for _ in range(10):
            result = join.step(dataset)
            got = pack_pairs(*unique_pairs(*result.pairs, n), n)
            exp = pack_pairs(*brute_force_pairs(*dataset.boxes()), n)
            assert np.array_equal(got, exp)
            assert result.n_results == exp.size
            motion.step(dataset)

    def test_incremental_fixed_resolution_across_steps(self):
        dataset, motion, _labels = make_clustered_workload(
            400, n_clusters=2, sd=8.0, width=6.0,
            bounds=(np.zeros(3), np.full(3, 200.0)), seed=17,
        )
        join = ThermalJoin(resolution=1.0)
        n = len(dataset)
        for _ in range(8):
            result = join.step(dataset)
            got = pack_pairs(*unique_pairs(*result.pairs, n), n)
            exp = pack_pairs(*brute_force_pairs(*dataset.boxes()), n)
            assert np.array_equal(got, exp)
            motion.step(dataset)

    def test_neural_workload_over_steps(self):
        dataset, motion, _labels = make_neural_workload(700, seed=19)
        join = ThermalJoin(resolution=1.0)
        n = len(dataset)
        for _ in range(5):
            result = join.step(dataset)
            got = pack_pairs(*unique_pairs(*result.pairs, n), n)
            exp = pack_pairs(*brute_force_pairs(*dataset.boxes()), n)
            assert np.array_equal(got, exp)
            motion.step(dataset)

    def test_single_object(self):
        ds = SpatialDataset(np.zeros((1, 3)) + 5.0, 1.0)
        assert ThermalJoin(resolution=1.0).step(ds).n_results == 0

    def test_all_in_one_hot_spot(self):
        rng = np.random.default_rng(0)
        centers = 50.0 + rng.uniform(0, 0.5, size=(20, 3))
        ds = SpatialDataset(centers, 10.0, bounds=(np.zeros(3), np.full(3, 100.0)))
        result = ThermalJoin(resolution=1.0).step(ds)
        assert result.n_results == 20 * 19 // 2
        # The hot spot reports everything combinatorially: zero tests
        # inside; only the (empty) neighbourhood could add tests.
        assert result.stats.overlap_tests == 0


class TestHotSpotBehaviour:
    def test_hot_spots_reduce_tests(self, uniform_small):
        # Same dataset and structure, r=1 (hot spots) vs r=2 (none).
        hot = ThermalJoin(resolution=1.0).step(uniform_small)
        coarse = ThermalJoin(resolution=2.0).step(uniform_small)
        assert hot.stats.overlap_tests < coarse.stats.overlap_tests
        assert hot.n_results == coarse.n_results

    def test_hot_spot_cells_reported(self, uniform_small):
        join = ThermalJoin(resolution=1.0)
        join.step(uniform_small)
        assert join.last_step_info["hot_spot_cells"] > 0

    def test_coarse_grid_uses_tgrids(self, uniform_small):
        # Small populations take the in-cell sweep; force the T-Grid by
        # lowering its population threshold.
        join = ThermalJoin(resolution=2.0, tgrid_min_objects=2)
        join.step(uniform_small)
        info = join.last_step_info
        assert info["tgrid_cells"] > 0

    def test_tests_never_exceed_nested_loop(self, uniform_small):
        n = len(uniform_small)
        result = ThermalJoin(resolution=1.0).step(uniform_small)
        assert result.stats.overlap_tests < n * (n - 1) // 2


class TestMaintenance:
    def test_grid_persists_across_steps(self):
        dataset, motion = make_uniform_workload(
            400, width=15.0, bounds=(np.zeros(3), np.full(3, 120.0)), seed=23
        )
        join = ThermalJoin(resolution=1.0)
        join.step(dataset)
        grid_first = join.pgrid
        motion.step(dataset)
        join.step(dataset)
        assert join.pgrid is grid_first  # recycled, not rebuilt

    def test_retuning_rebuilds_grid(self):
        dataset, motion = make_uniform_workload(
            400, width=15.0, bounds=(np.zeros(3), np.full(3, 120.0)), seed=29
        )
        join = ThermalJoin(cost_model="operations")
        join.step(dataset)
        width_first = join.last_step_info["cell_width"]
        assert join.pgrid is None  # first probe moved r -> grid dropped
        motion.step(dataset)
        join.step(dataset)  # rebuilt from scratch at the new resolution
        assert join.last_step_info["cell_width"] != width_first

    def test_gc_runs_in_long_simulations(self):
        dataset, motion = make_uniform_workload(
            150,
            width=4.0,
            translation=30.0,
            bounds=(np.zeros(3), np.full(3, 80.0)),
            seed=31,
        )
        join = ThermalJoin(resolution=1.0)
        for _ in range(20):
            join.step(dataset)
            motion.step(dataset)
        assert join.pgrid.gc_runs > 0


class TestConfiguration:
    def test_rejects_bad_resolution(self):
        with pytest.raises(ValueError):
            ThermalJoin(resolution=0.0)

    def test_rejects_bad_cost_model(self):
        with pytest.raises(ValueError):
            ThermalJoin(cost_model="magic")

    def test_fixed_resolution_disables_tuner(self):
        join = ThermalJoin(resolution=0.8)
        assert join.tuner is None
        assert join.current_resolution == 0.8

    def test_custom_tuner_accepted(self):
        tuner = HillClimbingTuner(initial=0.6)
        join = ThermalJoin(tuner=tuner)
        assert join.current_resolution == 0.6

    def test_count_only_mode(self, uniform_small):
        full = ThermalJoin(resolution=1.0).step(uniform_small)
        counted = ThermalJoin(resolution=1.0, count_only=True).step(uniform_small)
        assert counted.n_results == full.n_results
        assert counted.pairs is None


class TestStatistics:
    def test_phase_breakdown_present(self, uniform_small):
        join = ThermalJoin(resolution=1.0)
        result = join.step(uniform_small)
        phases = result.stats.phase_seconds
        assert set(phases) == {"building", "internal", "external"}
        assert all(v >= 0 for v in phases.values())

    def test_footprint_positive_after_step(self, uniform_small):
        join = ThermalJoin(resolution=1.0)
        assert join.memory_footprint() == 0
        join.step(uniform_small)
        assert join.memory_footprint() > 0

    def test_distance_join_via_enlarged_extent(self, uniform_small):
        # The paper's neural use case: distance join as enlarged overlap join.
        enlarged = uniform_small.with_enlarged_extent(4.0)
        base = ThermalJoin(resolution=1.0).step(uniform_small)
        wide = ThermalJoin(resolution=1.0).step(enlarged)
        assert wide.n_results > base.n_results
        assert_matches_oracle(ThermalJoin(resolution=1.0), enlarged)
