"""Indexed nested-loop R-Tree join (Elmasri & Navathe [9]).

The textbook indexed join the paper lists first among data-oriented
approaches (§2.1): "builds an R-Tree on one dataset and executes a range
query on it for each object in the other dataset to find intersecting
objects".  For the self-join the dataset queries its own tree; every
qualifying pair is found from both endpoints' queries and an
``id < id`` filter reports it once while both discoveries' leaf tests
are counted — the double work that makes the indexed nested loop
inferior to the synchronous traversal (the reason [34] recommends the
latter, which ``rtree.py`` implements).

Range queries are evaluated as a batched breadth-first descent over the
STR-packed tree, so the per-node work runs through vectorised
primitives.
"""

from __future__ import annotations

import numpy as np

from repro.geometry import group_by_keys, overlap_elementwise, window_pairs
from repro.joins.base import MBR_BYTES, POINTER_BYTES, SpatialJoinAlgorithm
from repro.joins.rtree import STRTree

from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.datasets import SpatialDataset
    from repro.engine import Executor
    from repro.geometry import PairAccumulator

__all__ = ["IndexedNestedLoopRTreeJoin"]


class IndexedNestedLoopRTreeJoin(SpatialJoinAlgorithm):
    """Self-join via one R-Tree range query per object.

    Parameters
    ----------
    fanout:
        Node capacity of the STR bulk-loaded tree.
    """

    name = "inl-rtree"

    def __init__(self, count_only: bool = False, fanout: int = 16, executor: Executor | None = None) -> None:
        super().__init__(count_only=count_only, executor=executor)
        self.fanout = int(fanout)
        self._tree = None
        self._boxes = None

    def _build(self, dataset: SpatialDataset) -> None:
        lo, hi = dataset.boxes()
        self._boxes = (lo, hi)
        self._tree = STRTree(lo, hi, self.fanout)

    def _join(self, dataset: SpatialDataset, accumulator: PairAccumulator) -> None:
        tree = self._tree
        lo, hi = self._boxes
        n = tree.n_objects
        fanout = tree.fanout
        top = tree.n_levels - 1

        # Frontier of (query object, node) pairs, descended level by level.
        queries = np.arange(n, dtype=np.int64)
        count_top = tree.level_lo[top].shape[0]
        if count_top > 1:
            # Expand against every top-level node first.
            expanded_q = []
            expanded_n = []
            for node in range(count_top):
                overlap = overlap_elementwise(
                    lo, hi, tree.level_lo[top][node], tree.level_hi[top][node]
                )
                expanded_q.append(queries[overlap])
                expanded_n.append(
                    np.full(int(overlap.sum()), node, dtype=np.int64)
                )
            queries = np.concatenate(expanded_q)
            nodes = np.concatenate(expanded_n)
        else:
            nodes = np.zeros(n, dtype=np.int64)

        for level in range(top, 0, -1):
            below = level - 1
            count_below = tree.level_lo[below].shape[0]
            box_lo = tree.level_lo[below]
            box_hi = tree.level_hi[below]
            next_q = []
            next_n = []
            for off in range(fanout):
                child = nodes * fanout + off
                valid = child < count_below
                child_c = np.minimum(child, count_below - 1)
                overlap = np.logical_and(
                    valid,
                    overlap_elementwise(
                        lo[queries], hi[queries], box_lo[child_c], box_hi[child_c]
                    ),
                )
                if overlap.any():
                    next_q.append(queries[overlap])
                    next_n.append(child_c[overlap])
            if not next_q:
                return 0
            queries = np.concatenate(next_q)
            nodes = np.concatenate(next_n)

        # Leaf level: compare each query with its reached leaves' objects.
        q_cat, q_starts, q_stops, unique_leaves = group_by_keys(nodes, ids=queries)
        leaf_starts = unique_leaves * fanout
        leaf_stops = np.minimum(leaf_starts + fanout, n)
        # Candidates: (leaf object, query) for every query at each leaf.
        rows, obj_pos = window_pairs(leaf_starts, leaf_stops)
        # For each (leaf, object) row pair every query of that leaf.
        row_q_starts = q_starts[rows]
        row_q_stops = q_stops[rows]
        obj_row_idx, q_pos = window_pairs(row_q_starts, row_q_stops)
        left = tree.leaf_order[obj_pos[obj_row_idx]]
        right = q_cat[q_pos]
        tests = int(left.size)
        overlap = overlap_elementwise(lo[left], hi[left], lo[right], hi[right])
        keep = np.logical_and(overlap, left < right)  # exactly-once emission
        accumulator.extend(left[keep], right[keep])
        return tests

    def memory_footprint(self) -> int:
        if self._tree is None:
            return 0
        return (
            self._tree.n_nodes() * (MBR_BYTES + POINTER_BYTES)
            + self._tree.n_objects * POINTER_BYTES
        )
