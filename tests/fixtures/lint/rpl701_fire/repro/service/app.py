"""Async front-end: per-file analysis sees no blocking call here."""

from .helpers import settle


async def handle() -> None:
    settle()
