def work(payload):
    return payload
