"""Benchmarks for the extensions beyond the paper's figures.

Covers the threaded external join (§2.1's parallelisation remark), the
memory-quota mode (§6.3), and the two extra baselines (indexed
nested-loop R-Tree, ST2B moving-object index), asserting each
extension's contract next to its timing.
"""

from __future__ import annotations

import pytest

from repro.core import ThermalJoin
from repro.experiments.figures import ALGORITHM_FACTORIES
from repro.experiments.workloads import scaled_neural

from conftest import NEURAL_N


@pytest.mark.parametrize("n_workers", [1, 2, 4])
def test_parallel_external_join(benchmark, n_workers):
    """Threaded external join at 1/2/4 workers (identical results)."""
    dataset, _motion, _labels = scaled_neural(NEURAL_N, seed=801)
    join = ThermalJoin(resolution=1.0, count_only=True, n_workers=n_workers)

    result = benchmark(lambda: join.step(dataset))
    assert result.n_results > 0


def test_parallel_results_match_serial():
    dataset, _motion, _labels = scaled_neural(NEURAL_N, seed=802)
    serial = ThermalJoin(resolution=1.0, count_only=True).step(dataset)
    threaded = ThermalJoin(
        resolution=1.0, count_only=True, n_workers=4
    ).step(dataset)
    assert threaded.n_results == serial.n_results
    assert threaded.stats.overlap_tests == serial.stats.overlap_tests


@pytest.mark.parametrize("quota_factor", [1.0, 0.25])
def test_memory_quota_step(benchmark, quota_factor):
    """Quota-constrained steps: a tight quota coarsens the grid."""
    dataset, _motion, _labels = scaled_neural(NEURAL_N, seed=803)
    unconstrained = ThermalJoin(resolution=0.5, count_only=True).step(dataset)
    quota = max(int(unconstrained.stats.memory_bytes * quota_factor), 10_000)
    join = ThermalJoin(resolution=0.5, count_only=True, memory_quota_bytes=quota)

    result = benchmark(lambda: join.step(dataset))
    assert result.stats.memory_bytes <= quota
    assert result.n_results == unconstrained.n_results


@pytest.mark.parametrize("name", ["inl-rtree", "st2b"])
def test_extension_baseline_step(benchmark, name):
    """One moving-workload step for each extension baseline."""
    dataset, motion, _labels = scaled_neural(NEURAL_N, seed=804)
    algorithm = ALGORITHM_FACTORIES[name]()

    def step():
        result = algorithm.step(dataset)
        motion.step(dataset)
        return result

    result = benchmark(step)
    assert result.n_results > 0


def test_st2b_incremental_updates_bounded():
    """ST2B's maintenance is proportional to the objects that changed
    cell — far fewer than n for the default translation distance."""
    from repro.joins import ST2BJoin

    dataset, motion, _labels = scaled_neural(NEURAL_N, seed=805)
    join = ST2BJoin()
    join.step(dataset)
    motion.step(dataset)
    join.step(dataset)
    # Updates happened, but not a full rebuild's worth.
    assert 0 < join.index_deletes < NEURAL_N


def test_inl_rtree_pays_both_directions():
    """The indexed nested loop discovers every pair twice (once from
    each endpoint's range query), so its object tests are bounded below
    by 2x the result count; the synchronous traversal finds each pair
    once."""
    from repro.joins import IndexedNestedLoopRTreeJoin, SynchronousRTreeJoin

    dataset, _motion, _labels = scaled_neural(NEURAL_N, seed=806)
    inl = IndexedNestedLoopRTreeJoin(fanout=16).step(dataset)
    sync = SynchronousRTreeJoin(fanout=16).step(dataset)
    assert inl.n_results == sync.n_results
    assert inl.stats.overlap_tests >= 2 * inl.n_results
