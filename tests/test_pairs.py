"""Unit tests for pair-set utilities (repro.geometry.pairs)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.geometry import (
    PairAccumulator,
    all_combinations,
    brute_force_pairs,
    canonicalize_pairs,
    mbr,
    pack_pairs,
    pairs_equal,
    unique_pairs,
    unpack_pairs,
)


class TestCanonicalize:
    def test_orders_pairs(self):
        i, j = canonicalize_pairs([5, 1, 3], [2, 4, 3])
        assert i.tolist() == [2, 1]
        assert j.tolist() == [5, 4]

    def test_drops_reflexive(self):
        i, j = canonicalize_pairs([1, 2], [1, 3])
        assert i.tolist() == [2]
        assert j.tolist() == [3]

    def test_empty_input(self):
        i, j = canonicalize_pairs([], [])
        assert i.size == 0 and j.size == 0

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            canonicalize_pairs([1, 2], [3])


class TestPacking:
    def test_roundtrip(self):
        i = np.array([0, 3, 7], dtype=np.int64)
        j = np.array([1, 9, 8], dtype=np.int64)
        keys = pack_pairs(i, j, 10)
        ri, rj = unpack_pairs(keys, 10)
        assert np.array_equal(ri, i)
        assert np.array_equal(rj, j)

    def test_keys_are_unique_per_pair(self):
        n = 25
        i, j = np.triu_indices(n, k=1)
        keys = pack_pairs(i.astype(np.int64), j.astype(np.int64), n)
        assert np.unique(keys).size == keys.size

    def test_out_of_range_raises(self):
        with pytest.raises(ValueError):
            pack_pairs([0], [5], 5)

    def test_nonpositive_n_raises(self):
        with pytest.raises(ValueError):
            pack_pairs([0], [0], 0)


class TestUniquePairs:
    def test_dedup_and_sort(self):
        i, j = unique_pairs([3, 1, 3, 2], [1, 3, 1, 2], n=5)
        # (3,1) duplicated and reversed, (2,2) reflexive dropped
        assert i.tolist() == [1]
        assert j.tolist() == [3]

    def test_pairs_equal_detects_equality(self):
        a = (np.array([1, 2]), np.array([3, 4]))
        b = (np.array([4, 3]), np.array([2, 1]))  # reversed order/commuted
        assert pairs_equal(a, b, n=5)

    def test_pairs_equal_detects_difference(self):
        a = (np.array([1]), np.array([3]))
        b = (np.array([1]), np.array([2]))
        assert not pairs_equal(a, b, n=5)


class TestPairAccumulator:
    def test_accumulates_batches(self):
        acc = PairAccumulator()
        acc.extend([1, 2], [0, 3])
        acc.extend([5], [4])
        i, j = acc.as_arrays()
        assert len(acc) == 3
        assert sorted(zip(i.tolist(), j.tolist(), strict=True)) == [(0, 1), (2, 3), (4, 5)]

    def test_reflexive_dropped_on_entry(self):
        acc = PairAccumulator()
        acc.extend([1, 2], [1, 3])
        assert len(acc) == 1

    def test_count_only_mode(self):
        acc = PairAccumulator(count_only=True)
        acc.extend([1, 2], [0, 3])
        assert len(acc) == 2
        with pytest.raises(RuntimeError):
            acc.as_arrays()

    def test_extend_canonical_fast_path(self):
        acc = PairAccumulator()
        acc.extend_canonical(np.array([0, 1]), np.array([2, 3]))
        i, j = acc.as_arrays()
        assert i.tolist() == [0, 1]
        assert j.tolist() == [2, 3]

    def test_empty_accumulator(self):
        acc = PairAccumulator()
        i, j = acc.as_arrays()
        assert i.size == 0 and j.size == 0
        assert len(acc) == 0

    def test_as_unique_arrays_dedups(self):
        acc = PairAccumulator()
        acc.extend([1, 3], [3, 1])  # same pair twice
        i, j = acc.as_unique_arrays(n=4)
        assert i.tolist() == [1]
        assert j.tolist() == [3]


class TestBruteForce:
    def test_known_configuration(self):
        # Three collinear unit-ish boxes: 0 overlaps 1, 1 overlaps 2, 0-2 disjoint.
        centers = np.array([[0.0, 0, 0], [1.5, 0, 0], [3.0, 0, 0]])
        lo, hi = mbr.boxes_from_centers(centers, 2.0)
        i, j = brute_force_pairs(lo, hi)
        assert list(zip(i.tolist(), j.tolist(), strict=True)) == [(0, 1), (1, 2)]

    def test_no_reflexive_or_commutative_duplicates(self):
        rng = np.random.default_rng(3)
        lo, hi = mbr.boxes_from_centers(rng.uniform(0, 20, (60, 3)), 6.0)
        i, j = brute_force_pairs(lo, hi)
        assert (i < j).all()
        keys = pack_pairs(i, j, 60)
        assert np.unique(keys).size == keys.size

    def test_chunking_invariance(self):
        rng = np.random.default_rng(4)
        lo, hi = mbr.boxes_from_centers(rng.uniform(0, 30, (100, 3)), 8.0)
        small = brute_force_pairs(lo, hi, chunk_size=7)
        large = brute_force_pairs(lo, hi, chunk_size=1000)
        assert np.array_equal(small[0], large[0])
        assert np.array_equal(small[1], large[1])

    def test_all_overlapping_clique(self):
        centers = np.zeros((5, 3)) + np.linspace(0, 0.1, 5)[:, None]
        lo, hi = mbr.boxes_from_centers(centers, 10.0)
        i, j = brute_force_pairs(lo, hi)
        assert i.size == 5 * 4 // 2


class TestAllCombinations:
    def test_emits_every_unordered_pair(self):
        i, j = all_combinations([7, 3, 9])
        assert sorted(zip(i.tolist(), j.tolist(), strict=True)) == [(3, 7), (3, 9), (7, 9)]

    def test_canonical_order(self):
        i, j = all_combinations([9, 1, 5, 2])
        assert (i < j).all()

    def test_small_inputs(self):
        for indices in ([], [4]):
            i, j = all_combinations(indices)
            assert i.size == 0 and j.size == 0

    def test_count_formula(self):
        indices = np.arange(20)
        i, j = all_combinations(indices)
        assert i.size == 20 * 19 // 2
