"""Sharded join service: bit-identity, degradation, caching, front-end.

The load-bearing property: every answer the service returns equals a
direct library call on an equally updated dataset, bit for bit —
across executor backends, motion models, and injected shard failures
(degraded answers are *marked*, never wrong).
"""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.core import ThermalJoin
from repro.datasets import make_uniform_dataset
from repro.datasets.dataset import SpatialDataset
from repro.datasets.motion import IntermittentTranslation, RandomTranslation
from repro.engine import (
    SerialExecutor,
    install_fault_plan,
    moved_groups,
    parse_faults,
)
from repro.engine import faults as faults_module
from repro.engine.executors import _LIVE_SEGMENTS
from repro.geometry import pack_pairs, unique_pairs
from repro.service import (
    JoinService,
    ResultCache,
    ServiceOverloadedError,
    ShardRing,
)


@pytest.fixture(autouse=True)
def _clean_fault_state(monkeypatch):
    monkeypatch.delenv("REPRO_FAULTS", raising=False)
    install_fault_plan(None)
    faults_module._env_cache = (None, None)
    yield
    install_fault_plan(None)
    faults_module._env_cache = (None, None)


@pytest.fixture(scope="module")
def service_dataset():
    return make_uniform_dataset(
        350, width=6.0, bounds=(np.zeros(3), np.array([120.0, 70.0, 50.0])), seed=11
    )


def _keys(pairs, n):
    return pack_pairs(*pairs, n)


def _library_join_keys(dataset):
    n = len(dataset)
    return _keys(ThermalJoin().join_pairs(dataset), n)


def _library_distance_keys(dataset, distance):
    result = ThermalJoin().distance_join(dataset, distance)
    n = len(dataset)
    return _keys(unique_pairs(*result.pairs, n), n)


# ----------------------------------------------------------------------
# Ring bit-identity across executors and motion models
# ----------------------------------------------------------------------
class TestRingIdentity:
    @pytest.mark.parametrize("executor", ["serial", "thread:2"])
    @pytest.mark.parametrize("motion_cls", [RandomTranslation, IntermittentTranslation])
    def test_identity_across_epochs(self, service_dataset, executor, motion_cls):
        baseline = service_dataset.copy()
        motion = motion_cls(baseline, distance=1.5, seed=3)
        ring = ShardRing(baseline, n_shards=4, executor=executor)
        n = len(baseline)
        try:
            for _ in range(3):
                answer = ring.join_pairs()
                assert np.array_equal(
                    _keys(answer.pairs, n), _library_join_keys(baseline)
                )
                assert not answer.degraded and not answer.stale
                distance_answer = ring.distance_pairs(2.0)
                assert np.array_equal(
                    _keys(distance_answer.pairs, n),
                    _library_distance_keys(baseline, 2.0),
                )
                motion.step(baseline)
                ring.apply_update(baseline.centers)
        finally:
            ring.close()

    def test_identity_with_process_backend(self, service_dataset):
        baseline = service_dataset.copy()
        motion = RandomTranslation(baseline, distance=2.0, seed=5)
        ring = ShardRing(baseline, n_shards=3, executor="process:2")
        n = len(baseline)
        try:
            for _ in range(2):
                answer = ring.join_pairs()
                assert np.array_equal(
                    _keys(answer.pairs, n), _library_join_keys(baseline)
                )
                motion.step(baseline)
                ring.apply_update(baseline.centers)
        finally:
            ring.close()
        assert not _LIVE_SEGMENTS  # publication + step segments all released

    def test_single_shard_ring(self, service_dataset):
        with ShardRing(service_dataset, n_shards=1) as ring:
            n = len(service_dataset)
            answer = ring.join_pairs()
            assert np.array_equal(
                _keys(answer.pairs, n), _library_join_keys(service_dataset)
            )

    def test_empty_shards_are_tolerated(self, rng):
        # Everything clustered in one corner: most slabs own nothing.
        centers = rng.uniform(0.0, 10.0, size=(80, 3))
        dataset = SpatialDataset(
            centers, 2.0, bounds=(np.zeros(3), np.full(3, 200.0))
        )
        with ShardRing(dataset, n_shards=6) as ring:
            n = len(dataset)
            answer = ring.join_pairs()
            assert np.array_equal(
                _keys(answer.pairs, n), _library_join_keys(dataset)
            )

    def test_shared_executor_instance_is_not_closed(self, service_dataset):
        executor = SerialExecutor()
        ring = ShardRing(service_dataset, n_shards=2, executor=executor)
        ring.join_pairs()
        ring.close()
        # The ring must not shut down a pool it was lent.
        assert ring.executor is executor


# ----------------------------------------------------------------------
# Degradation ladder: kills degrade the answer, never corrupt it
# ----------------------------------------------------------------------
class TestRingDegradation:
    def test_one_shot_kill_rehomes_and_recovers(self, service_dataset):
        n = len(service_dataset)
        expected = _library_join_keys(service_dataset)
        with ShardRing(service_dataset, n_shards=3) as ring:
            ring.kill_shard(1)
            answer = ring.join_pairs()
            assert np.array_equal(_keys(answer.pairs, n), expected)
            assert answer.degraded and not answer.stale
            assert ring.rehomes == 1
            kinds = [e["kind"] for e in ring._epoch_events]
            assert "shard_failed" in kinds and "shard_rehomed" in kinds
            # Next query is healthy again.
            healthy = ring.join_pairs()
            assert not healthy.stale
            assert np.array_equal(_keys(healthy.pairs, n), expected)

    def test_permanent_kill_serves_stale_marked(self, service_dataset):
        n = len(service_dataset)
        expected = _library_join_keys(service_dataset)
        with ShardRing(service_dataset, n_shards=3) as ring:
            ring.join_pairs()  # prime the stale store
            ring.kill_shard(2, permanent=True)
            answer = ring.join_pairs()
            # Positions unchanged, so the stale contribution is still
            # exact — but it must be *marked*.
            assert np.array_equal(_keys(answer.pairs, n), expected)
            assert answer.degraded and answer.stale
            assert ring.stale_served >= 1
            kinds = [e["kind"] for e in ring._epoch_events]
            assert "shard_dead" in kinds

    def test_permanent_kill_without_stale_answer_raises(self, service_dataset):
        with ShardRing(service_dataset, n_shards=3) as ring:
            ring.kill_shard(0, permanent=True)
            with pytest.raises(RuntimeError, match="injected shard failure"):
                ring.join_pairs()

    def test_injected_task_fault_degrades_but_stays_exact(self, service_dataset):
        n = len(service_dataset)
        expected = _library_join_keys(service_dataset)
        install_fault_plan(parse_faults("raise@0"))
        with ShardRing(service_dataset, n_shards=3) as ring:
            answer = ring.join_pairs()
            assert np.array_equal(_keys(answer.pairs, n), expected)
            assert answer.degraded  # the executor retry is visible
            assert any(
                e["kind"] == "task_retry" for e in ring._epoch_events
            )

    def test_kill_unknown_shard_rejected(self, service_dataset):
        with ShardRing(service_dataset, n_shards=2) as ring:
            with pytest.raises(ValueError, match="no shard 7"):
                ring.kill_shard(7)


# ----------------------------------------------------------------------
# Result cache: versioned keys, moved_groups-driven invalidation
# ----------------------------------------------------------------------
class TestResultCache:
    def test_repeated_query_hits_assembled_cache(self, service_dataset):
        with ShardRing(service_dataset, n_shards=3) as ring:
            first = ring.join_pairs()
            hits_before = ring.cache.hits
            second = ring.join_pairs()
            assert ring.cache.hits > hits_before
            assert second is first  # the assembled answer is reused

    def test_untouched_shards_survive_an_update(self):
        # Two tight clusters at opposite ends of the slab axis; moving
        # only the low cluster must leave the high shard's entry hot.
        rng = np.random.default_rng(9)
        low = rng.uniform([2.0, 2.0, 2.0], [20.0, 45.0, 45.0], size=(60, 3))
        high = rng.uniform([180.0, 2.0, 2.0], [198.0, 45.0, 45.0], size=(60, 3))
        centers = np.concatenate([low, high])
        dataset = SpatialDataset(
            centers, 2.0, bounds=(np.zeros(3), np.array([200.0, 50.0, 50.0]))
        )
        n = len(dataset)
        baseline = dataset.copy()
        with ShardRing(dataset, n_shards=2) as ring:
            ring.join_pairs()
            shard_versions = [shard.version for shard in ring._shards]

            new_centers = baseline.centers.copy()
            new_centers[:60] += np.array([1.0, 0.5, -0.5])  # low cluster only
            before = baseline.centers.copy()
            baseline.centers[:] = new_centers
            baseline.commit_motion(before)
            ring.apply_update(new_centers)

            # Shard 1 (high cluster) was untouched: version pinned.
            assert ring._shards[0].version != shard_versions[0]
            assert ring._shards[1].version == shard_versions[1]

            hits_before = ring.cache.hits
            answer = ring.join_pairs()
            assert ring.cache.hits > hits_before  # shard 1 served from cache
            assert np.array_equal(_keys(answer.pairs, n), _library_join_keys(baseline))

    def test_moved_groups_is_the_invalidation_primitive(self):
        from repro.datasets.delta import MotionDelta

        delta = MotionDelta(
            moved=np.array([1, 4], dtype=np.int64),
            displacement=np.ones((2, 3)),
            n_objects=6,
            dataset_uid=0,
            base_version=0,
            version=1,
        )
        assignment = np.array([0, 0, 1, 1, 2, 2])
        assert moved_groups(delta, assignment).tolist() == [0, 2]

    def test_moved_groups_validates_assignment_shape(self):
        from repro.datasets.delta import MotionDelta

        delta = MotionDelta(
            moved=np.array([0], dtype=np.int64),
            displacement=np.ones((1, 3)),
            n_objects=4,
            dataset_uid=0,
            base_version=0,
            version=1,
        )
        with pytest.raises(ValueError, match="describes 4"):
            moved_groups(delta, np.zeros(3, dtype=np.int64))

    def test_cache_eviction_and_counters(self):
        cache = ResultCache(max_entries=2)
        cache.put((0, 0, "a"), 1)
        cache.put((0, 0, "b"), 2)
        cache.put((1, 0, "c"), 3)  # evicts the oldest
        assert len(cache) == 2
        assert cache.evicted == 1
        assert cache.get((0, 0, "a")) is None  # miss
        assert cache.get((1, 0, "c")) == 3  # hit
        assert cache.invalidate_shard(0) == 1
        assert cache.metrics()["invalidated"] == 1

    def test_cache_rejects_nonpositive_bound(self):
        with pytest.raises(ValueError, match="max_entries"):
            ResultCache(max_entries=0)


# ----------------------------------------------------------------------
# Async front-end: the service-level property test
# ----------------------------------------------------------------------
class TestJoinService:
    @pytest.mark.parametrize("executor", ["serial", "thread:2", "process:2"])
    def test_service_answers_match_library(self, service_dataset, executor):
        async def scenario():
            baseline = service_dataset.copy()
            motion = RandomTranslation(baseline, distance=1.5, seed=17)
            n = len(baseline)
            async with JoinService(
                service_dataset, n_shards=3, executor=executor
            ) as service:
                for _ in range(2):
                    answer = await service.join()
                    assert np.array_equal(
                        _keys(answer.pairs, n), _library_join_keys(baseline)
                    )
                    neighbor_answer = await service.neighbors()
                    offsets, neighbors = neighbor_answer.adjacency
                    lib_offsets, lib_neighbors = ThermalJoin().neighbors(baseline)
                    assert np.array_equal(offsets, lib_offsets)
                    assert np.array_equal(neighbors, lib_neighbors)
                    motion.step(baseline)
                    epoch = await service.update(baseline.centers.copy())
                    assert epoch == baseline.version

        asyncio.run(scenario())

    def test_service_degrades_under_shard_kill(self, service_dataset):
        async def scenario():
            n = len(service_dataset)
            expected = _library_join_keys(service_dataset)
            async with JoinService(service_dataset, n_shards=3) as service:
                healthy = await service.join()
                assert not healthy.degraded
                await service.kill_shard(1)
                degraded = await service.join()
                assert degraded.degraded
                assert np.array_equal(_keys(degraded.pairs, n), expected)
                await service.kill_shard(2, permanent=True)
                stale = await service.join()
                assert stale.degraded and stale.stale
                assert np.array_equal(_keys(stale.pairs, n), expected)

        asyncio.run(scenario())

    def test_service_exact_under_injected_task_faults(self, service_dataset):
        async def scenario():
            n = len(service_dataset)
            install_fault_plan(parse_faults("raise@0"))
            async with JoinService(service_dataset, n_shards=2) as service:
                answer = await service.join()
                assert np.array_equal(
                    _keys(answer.pairs, n), _library_join_keys(service_dataset)
                )
                assert answer.degraded  # retried, recorded, still exact

        asyncio.run(scenario())

    def test_duplicate_queries_batch(self, service_dataset):
        async def scenario():
            async with JoinService(service_dataset, n_shards=2) as service:
                answers = await asyncio.gather(
                    *[service.distance(1.0) for _ in range(4)]
                )
                cached_flags = sorted(a.cached for a in answers)
                assert cached_flags == [False, True, True, True]
                assert service.batched == 3
                n = len(service_dataset)
                reference = _library_distance_keys(service_dataset, 1.0)
                for answer in answers:
                    assert np.array_equal(_keys(answer.pairs, n), reference)

        asyncio.run(scenario())

    def test_admission_control_rejects_overload(self, service_dataset, monkeypatch):
        async def scenario():
            service = JoinService(service_dataset, n_shards=2, max_pending=2)
            original = JoinService._compute

            def slow_compute(self, kind, params, payload):
                import time as time_module

                time_module.sleep(0.2)
                return original(self, kind, params, payload)

            monkeypatch.setattr(JoinService, "_compute", slow_compute)
            await service.start()
            first = asyncio.ensure_future(service.join())
            second = asyncio.ensure_future(service.join())
            await asyncio.sleep(0.05)  # both admitted and in flight
            with pytest.raises(ServiceOverloadedError):
                await service.join()
            assert service.rejected == 1
            await asyncio.gather(first, second)
            # Load drained: submissions are admitted again.
            final = await service.join()
            assert final.n_results >= 0
            await service.stop()

        asyncio.run(scenario())

    def test_requests_require_running_service(self, service_dataset):
        async def scenario():
            service = JoinService(service_dataset, n_shards=2)
            with pytest.raises(RuntimeError, match="not running"):
                await service.join()
            await service.start()
            await service.stop()
            with pytest.raises(RuntimeError, match="not running"):
                await service.join()

        asyncio.run(scenario())

    def test_frontend_metrics_flow_through_registry(self, service_dataset):
        async def scenario():
            async with JoinService(service_dataset, n_shards=2) as service:
                await service.join()
                snapshot = service.ring.metrics.snapshot()
                assert snapshot["frontend"]["accepted"] == 1
                assert snapshot["frontend"]["latency_max_seconds"] > 0.0
                assert "ring" in snapshot and "cache" in snapshot
                assert snapshot["shard0"]["queries"] >= 1

        asyncio.run(scenario())

    def test_epoch_record_is_bench_shaped(self, service_dataset):
        with ShardRing(service_dataset, n_shards=2) as ring:
            answer = ring.join_pairs()
            record = ring.epoch_record(0, answer.n_results)
            assert record.step == 0
            assert record.n_results == answer.n_results
            assert record.overlap_tests > 0
            assert record.memory_bytes > 0
            assert "ring" in record.index_counters
