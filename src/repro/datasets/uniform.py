"""Uniform random moving-object benchmark (paper Section 5.3).

Defaults follow the paper: objects uniformly distributed inside the box
``(0, 0, 0)``–``(1000, 1000, 1000)``, a shared cubic object width of 15
units and a per-step translation distance of 10 units.  The paper runs
10 million objects in C++; reproduction-scale defaults are smaller and
every size is a parameter.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.dataset import SpatialDataset
from repro.datasets.motion import RandomTranslation

__all__ = ["UNIFORM_BOUNDS", "make_uniform_dataset", "make_uniform_workload"]

#: The paper's synthetic domain: a 1000-unit cube anchored at the origin.
UNIFORM_BOUNDS = (
    np.zeros(3),
    np.full(3, 1000.0),
)


def make_uniform_dataset(
    n_objects: int,
    width: float = 15.0,
    width_range: tuple[float, float] | None = None,
    bounds: tuple[np.ndarray, np.ndarray] = UNIFORM_BOUNDS,
    seed: int = 0,
) -> SpatialDataset:
    """Generate the uniform benchmark dataset.

    Parameters
    ----------
    n_objects:
        Number of spatial objects.
    width:
        Shared cubic object width (the paper's default is 15 units).
        Ignored when ``width_range`` is given.
    width_range:
        Optional ``(smallest, largest)`` widths for the object-size
        variation experiment (Figure 9(c)): each object draws a cubic
        width uniformly from the range.  A difference of 0 reduces to the
        fixed-width case.
    bounds:
        Domain bounds; objects' centers are drawn uniformly inside.
    seed:
        Seed for the generator.

    Returns
    -------
    SpatialDataset
    """
    if n_objects <= 0:
        raise ValueError(f"n_objects must be positive, got {n_objects}")
    rng = np.random.default_rng(seed)
    lo = np.asarray(bounds[0], dtype=np.float64)
    hi = np.asarray(bounds[1], dtype=np.float64)
    centers = rng.uniform(lo, hi, size=(n_objects, 3))
    if width_range is not None:
        w_min, w_max = float(width_range[0]), float(width_range[1])
        if not 0 < w_min <= w_max:
            raise ValueError(f"invalid width_range {width_range}")
        widths = rng.uniform(w_min, w_max, size=n_objects)
    else:
        widths = float(width)
    return SpatialDataset(centers, widths, bounds=(lo, hi))


def make_uniform_workload(
    n_objects: int,
    width: float = 15.0,
    width_range: tuple[float, float] | None = None,
    translation: float = 10.0,
    bounds: tuple[np.ndarray, np.ndarray] = UNIFORM_BOUNDS,
    seed: int = 0,
) -> tuple[SpatialDataset, RandomTranslation]:
    """Generate the dataset together with its motion model.

    Returns ``(dataset, motion)`` ready to hand to the simulation runner.
    """
    dataset = make_uniform_dataset(
        n_objects, width=width, width_range=width_range, bounds=bounds, seed=seed
    )
    motion = RandomTranslation(dataset, distance=translation, seed=seed + 1)
    return dataset, motion
