"""Self-tuning walkthrough: hill climbing on the P-Grid resolution.

Shows §4.3.2 end to end: THERMAL-JOIN starts at r = 1, probes coarser
and finer grids while the simulation runs, converges within a few steps
(the paper observes 6–8), and — when the workload's distribution changes
mid-simulation — detects the cost drift (Equation 2) and re-tunes.

Run::

    python examples/tuning_demo.py
"""

import numpy as np

from repro import ThermalJoin, make_uniform_workload


def main():
    dataset, motion = make_uniform_workload(
        8_000, width=15.0, bounds=((0, 0, 0), (420, 420, 420)), seed=5
    )
    join = ThermalJoin(cost_model="operations")

    print("phase 1: tuning from scratch on the uniform workload")
    print(f"{'step':>4} {'r used':>7} {'cost (ops)':>12} {'state':>10}")
    for step in range(10):
        join.step(dataset)
        r_used, cost = join.tuner.history[-1]
        state = "converged" if join.tuner.converged else "exploring"
        print(f"{step:>4} {r_used:>7.3f} {cost:>12,.0f} {state:>10}")
        motion.step(dataset)

    print(
        f"\nconverged at r={join.current_resolution:.3f} after "
        f"{join.tuner.tuning_steps} tuning observations"
    )

    # Change the workload distribution drastically: collapse everything
    # into one dense cluster.  Equation 2 should notice the cost drift
    # and re-open the tuning.
    print("\nphase 2: distribution change (uniform -> single dense cluster)")
    rng = np.random.default_rng(17)
    clustered = 210.0 + rng.normal(scale=25.0, size=dataset.centers.shape)
    dataset.update_positions(np.clip(clustered, 0.0, 420.0))

    for step in range(12):
        join.step(dataset)
        r_used, cost = join.tuner.history[-1]
        state = "converged" if join.tuner.converged else "re-tuning"
        print(f"{step:>4} {r_used:>7.3f} {cost:>12,.0f} {state:>10}")
        motion.step(dataset)

    print(
        f"\nre-tunes triggered: {join.tuner.retunes}, "
        f"final r={join.current_resolution:.3f}, converged={join.tuner.converged}"
    )


if __name__ == "__main__":
    main()
