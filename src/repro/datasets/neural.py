"""Synthetic neural-tissue workload (substitute for the rat-brain sample).

The paper's driving workload (Sections 3.1 and 5.2) is a proprietary
Human Brain Project sample: 1 692 neurons whose branches are modelled by
four million small cylindrical objects, joined with a distance predicate
at every step of a neural-plasticity simulation.  That data is not
redistributable, so this module builds the closest synthetic equivalent
(see DESIGN.md §2): procedurally grown neuron morphologies whose
segments become the spatial objects.

What matters for the join problem — and what the generator reproduces —
is the *spatial statistics* of the tissue, not biology:

* objects lie densely along one-dimensional branches (high local
  density → many genuinely overlapping pairs → hot spots),
* branches from many neurons interleave in the same volume (skew),
* every object has the same fixed extent (the paper's ``w``),
* the density varies across the volume as branches cluster.

The morphology model is a momentum random walk: each neuron grows a set
of tortuous branches from its soma, branching recursively, with roughly
``segments_per_neuron`` segments per neuron (the paper's sample has
~2 400 objects per neuron: 4 M objects / 1 692 neurons).
"""

from __future__ import annotations

import numpy as np

from repro.datasets.dataset import SpatialDataset
from repro.datasets.motion import BranchJitter, _reflect
from repro.geometry import width_from_volume

__all__ = ["make_neural_dataset", "make_neural_workload"]

#: Objects per neuron in the paper's sample (4 M objects / 1 692 neurons).
PAPER_SEGMENTS_PER_NEURON = 2364


def _grow_branch(
    rng: np.random.Generator,
    start: np.ndarray,
    direction: np.ndarray,
    length: int,
    step: float,
    tortuosity: float,
) -> np.ndarray:
    """Grow one tortuous branch; returns its segment centers ``(length, 3)``.

    The branch direction performs a momentum random walk: Gaussian turning
    noise is accumulated and renormalised, giving the meandering paths of
    real dendrites without a per-segment Python loop.
    """
    noise = rng.normal(scale=tortuosity, size=(length, 3))
    directions = direction[None, :] + np.cumsum(noise, axis=0)
    norms = np.linalg.norm(directions, axis=1, keepdims=True)
    norms[norms == 0.0] = 1.0
    directions /= norms
    return start[None, :] + np.cumsum(directions * step, axis=0)


def make_neural_dataset(
    n_objects: int,
    object_volume: float = 15.0,
    segments_per_neuron: int | None = None,
    domain_side: float | None = None,
    segment_step: float = 1.0,
    tortuosity: float = 0.35,
    branch_probability: float = 0.08,
    seed: int = 0,
) -> tuple[SpatialDataset, np.ndarray]:
    """Generate the synthetic neural-tissue dataset.

    Parameters
    ----------
    n_objects:
        Total number of cylindrical-segment objects to generate.
    object_volume:
        Object extent as a volume (the paper's ``15 micron^3`` default);
        converted to a cubic width internally.
    segments_per_neuron:
        Target branch segments per neuron.  Defaults to the paper's
        sample ratio (~2 364), clamped so at least one neuron exists.
    domain_side:
        Side length of the cubic tissue volume.  Defaults to a size that
        keeps the object density — and hence the join selectivity — at
        neural-tissue levels across dataset sizes.
    segment_step:
        Distance between consecutive segment centers along a branch.
    tortuosity:
        Turning-noise scale of the branch random walk.
    branch_probability:
        Per-segment probability that a branch forks while budget remains.
    seed:
        Seed for the generator.

    Returns
    -------
    tuple
        ``(dataset, neuron_labels)`` where ``neuron_labels`` maps each
        object to its neuron (used by the plasticity motion model).
    """
    if n_objects <= 0:
        raise ValueError(f"n_objects must be positive, got {n_objects}")
    if object_volume <= 0:
        raise ValueError(f"object_volume must be positive, got {object_volume}")
    if segments_per_neuron is None:
        segments_per_neuron = PAPER_SEGMENTS_PER_NEURON
    segments_per_neuron = max(int(segments_per_neuron), 8)
    n_neurons = max(1, round(n_objects / segments_per_neuron))
    if domain_side is None:
        # Hold the density constant as n grows: volume proportional to n.
        # The constant is calibrated so a fixed 15-unit^3 extent yields
        # neural-tissue selectivity (order of 10^2 overlap partners per
        # object, the regime of the paper's Figure 7a).
        domain_side = max(20.0, 1.1 * n_objects ** (1.0 / 3.0))
    domain_side = float(domain_side)

    rng = np.random.default_rng(seed)
    lo = np.zeros(3)
    hi = np.full(3, domain_side)
    margin = 0.1 * domain_side
    somata = rng.uniform(lo + margin, hi - margin, size=(n_neurons, 3))

    all_centers = []
    all_labels = []
    produced = 0
    for neuron in range(n_neurons):
        budget = segments_per_neuron
        if neuron == n_neurons - 1:
            budget = n_objects - produced  # last neuron absorbs the remainder
        budget = min(budget, n_objects - produced)
        if budget <= 0:
            break
        # Seed a handful of primary branches from the soma, then fork.
        stack = []
        n_primary = int(rng.integers(2, 6))
        for _ in range(n_primary):
            direction = rng.normal(size=3)
            direction /= np.linalg.norm(direction)
            stack.append((somata[neuron], direction))
        while budget > 0 and stack:
            start, direction = stack.pop()
            length = int(min(budget, rng.integers(16, 64)))
            centers = _grow_branch(rng, start, direction, length, segment_step, tortuosity)
            budget -= length
            produced += length
            all_centers.append(centers)
            all_labels.append(np.full(length, neuron, dtype=np.int64))
            # Fork children from random points of this branch.
            forks = rng.random(length) < branch_probability
            for fork_idx in np.nonzero(forks)[0]:
                child_dir = direction + rng.normal(scale=0.8, size=3)
                child_dir /= np.linalg.norm(child_dir)
                stack.append((centers[fork_idx], child_dir))
            if not stack and budget > 0:
                # Keep growing from the branch tip if all forks are spent.
                stack.append((centers[-1], direction))

    centers = np.concatenate(all_centers)[:n_objects]
    labels = np.concatenate(all_labels)[:n_objects]
    # Fold protruding branches back into the tissue volume by reflection.
    # (Clipping would flatten them onto the boundary planes, creating
    # artificial density sheets that distort the join selectivity.)
    _reflect(centers, np.zeros_like(centers), lo, hi)

    width = width_from_volume(object_volume)
    dataset = SpatialDataset(centers, width, bounds=(lo, hi))
    return dataset, labels


def make_neural_workload(
    n_objects: int,
    object_volume: float = 15.0,
    drift: float = 1.5,
    jitter: float = 0.4,
    seed: int = 0,
    **dataset_kwargs: object,
) -> tuple[SpatialDataset, BranchJitter, np.ndarray]:
    """Generate the neural dataset together with its plasticity motion model.

    Returns ``(dataset, motion, neuron_labels)``.
    """
    dataset, labels = make_neural_dataset(
        n_objects, object_volume=object_volume, seed=seed, **dataset_kwargs
    )
    motion = BranchJitter(dataset, labels, drift=drift, jitter=jitter, seed=seed + 1)
    return dataset, motion, labels
