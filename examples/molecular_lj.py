"""Molecular simulation with the Lennard-Jones pair potential (§3.1).

The paper lists the Lennard-Jones method [10] among the interaction
frameworks served by the iterative self-join.  This example runs a tiny
molecular-dynamics loop: atoms interact within a cut-off radius (the
standard 2.5 sigma), the self-join supplies exactly those pairs each
step, and velocity-Verlet integration advances the system while total
energy is tracked.

Run::

    python examples/molecular_lj.py
"""

import numpy as np

from repro import SpatialDataset, ThermalJoin

N_ATOMS = 4_000
SIGMA = 1.0
EPSILON = 1.0
CUTOFF = 2.5 * SIGMA
BOX = 30.0
DT = 0.002
N_STEPS = 15


def lj_forces_and_energy(dataset, join):
    """One join step plus Lennard-Jones force/energy evaluation."""
    result = join.step(dataset)
    i_idx, j_idx = result.pairs
    delta = dataset.centers[i_idx] - dataset.centers[j_idx]
    dist_sq = (delta * delta).sum(axis=1)
    # The join is conservative (cube overlap); apply the spherical cut-off.
    inside = dist_sq < CUTOFF**2
    i_idx, j_idx, delta = i_idx[inside], j_idx[inside], delta[inside]
    dist_sq = np.maximum(dist_sq[inside], 0.64 * SIGMA**2)  # soft core

    inv_r2 = SIGMA**2 / dist_sq
    inv_r6 = inv_r2**3
    # F = 24 eps (2 (s/r)^12 - (s/r)^6) / r^2 * r_vec
    magnitude = 24.0 * EPSILON * (2.0 * inv_r6**2 - inv_r6) / dist_sq
    pair_force = delta * magnitude[:, None]
    forces = np.zeros_like(dataset.centers)
    np.add.at(forces, i_idx, pair_force)
    np.add.at(forces, j_idx, -pair_force)
    potential = float((4.0 * EPSILON * (inv_r6**2 - inv_r6)).sum())
    return forces, potential, result


def main():
    rng = np.random.default_rng(21)
    # Atoms on a jittered lattice (avoids catastrophic initial overlap).
    grid = int(np.ceil(N_ATOMS ** (1 / 3)))
    lattice = np.stack(
        np.meshgrid(*[np.arange(grid)] * 3, indexing="ij"), axis=-1
    ).reshape(-1, 3)[:N_ATOMS]
    centers = lattice * (BOX / grid) + rng.uniform(0.1, 0.4, size=(N_ATOMS, 3))
    velocities = rng.normal(scale=0.5, size=(N_ATOMS, 3))
    velocities -= velocities.mean(axis=0)  # zero net momentum

    atoms = SpatialDataset(
        centers, CUTOFF, bounds=(np.zeros(3), np.full(3, BOX))
    )
    join = ThermalJoin()

    forces, potential, result = lj_forces_and_energy(atoms, join)
    print(f"{'step':>4} {'pairs':>9} {'join [ms]':>10} {'E_pot':>12} {'E_kin':>10} {'E_tot':>12}")
    for step in range(N_STEPS):
        # Velocity Verlet.
        velocities += 0.5 * forces * DT
        atoms.translate(velocities * DT)
        # Reflecting walls.
        below = atoms.centers < 0.0
        above = atoms.centers > BOX
        velocities[below | above] *= -1.0
        np.clip(atoms.centers, 0.0, BOX, out=atoms.centers)
        atoms.version += 1

        forces, potential, result = lj_forces_and_energy(atoms, join)
        velocities += 0.5 * forces * DT

        kinetic = 0.5 * float((velocities**2).sum())
        if step % 3 == 0:
            print(
                f"{step:>4} {result.n_results:>9,} "
                f"{result.stats.total_seconds * 1e3:>10.1f} "
                f"{potential:>12.1f} {kinetic:>10.1f} {potential + kinetic:>12.1f}"
            )

    print(
        f"\njoin over {N_STEPS} steps: tuner converged={join.tuner.converged}, "
        f"r={join.current_resolution:.2f}"
    )


if __name__ == "__main__":
    main()
