"""Codecs between live simulation objects and checkpoint (arrays, meta).

Three codecs, one per resumable component:

* **Dataset** — the SoA arrays (centers, widths, named attributes),
  the bounds and the version counter.  The process-local ``uid`` is
  *not* serialized: a restored dataset gets a fresh uid and every
  uid-pinned consumer (the maintained pair set) re-pins against it.
* **Motion model** — a reflective snapshot of the instance dict.  The
  interesting case is the seeded :class:`numpy.random.Generator`: its
  ``bit_generator.state`` is a nested dict of Python ints and floats,
  which JSON round-trips exactly (arbitrary-precision ints, repr'd
  doubles), so a restored model draws the *same* random stream the
  uninterrupted run would have drawn.
* **StepRecord** — plain JSON of the dataclass fields (all already
  JSON-shaped: the metrics registry coerces counters to Python scalars
  before they reach the record).

Restores validate eagerly and raise :class:`ValueError` on anything
that does not look like what the matching snapshot wrote — the loader
upgrades those into corrupt-checkpoint skips.
"""

from __future__ import annotations

import importlib
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.datasets.dataset import SpatialDataset
from repro.datasets.motion import MotionModel

if TYPE_CHECKING:
    from repro.simulation.runner import StepRecord

__all__ = [
    "restore_dataset",
    "restore_motion",
    "restore_shard",
    "snapshot_dataset",
    "snapshot_motion",
    "snapshot_shard",
    "step_record_from_jsonable",
    "step_record_to_jsonable",
]


# ----------------------------------------------------------------------
# Dataset
# ----------------------------------------------------------------------
def snapshot_dataset(
    dataset: SpatialDataset,
) -> tuple[dict[str, np.ndarray], dict[str, Any]]:
    """Capture a dataset as checkpoint (arrays, meta)."""
    lo, hi = dataset.bounds
    arrays: dict[str, np.ndarray] = {
        "centers": dataset.centers,
        "widths": dataset.widths,
        "bounds_lo": lo,
        "bounds_hi": hi,
    }
    for name, value in dataset.attributes.items():
        arrays[f"attr/{name}"] = np.asarray(value)
    return arrays, {
        "version": dataset.version,
        "attributes": sorted(dataset.attributes),
    }


def restore_dataset(
    arrays: dict[str, np.ndarray], meta: dict[str, Any]
) -> SpatialDataset:
    """Rebuild a dataset; fresh uid, checkpointed version."""
    attributes = {
        str(name): arrays[f"attr/{name}"] for name in meta["attributes"]
    }
    dataset = SpatialDataset(
        arrays["centers"],
        arrays["widths"],
        bounds=(arrays["bounds_lo"], arrays["bounds_hi"]),
        attributes=attributes,
    )
    dataset.version = int(meta["version"])
    return dataset


# ----------------------------------------------------------------------
# Shards (dataset + algorithm state as one unit)
# ----------------------------------------------------------------------
def snapshot_shard(
    dataset: SpatialDataset, algorithm: Any
) -> tuple[dict[str, np.ndarray], dict[str, Any]]:
    """Capture one service shard — its dataset plus its algorithm state.

    The sharded join service snapshots each shard after every applied
    update so a killed worker can be re-homed from its last committed
    state instead of rebuilt from scratch.  The codec simply composes
    :func:`snapshot_dataset` with the algorithm's
    :meth:`~repro.joins.base.SpatialJoinAlgorithm.snapshot_state` under
    prefixed array keys, so either half round-trips through the same
    ``.npz`` channel the checkpoint manager already uses.
    """
    arrays: dict[str, np.ndarray] = {}
    dataset_arrays, dataset_meta = snapshot_dataset(dataset)
    for key, value in dataset_arrays.items():
        arrays[f"dataset/{key}"] = value
    algorithm_arrays, algorithm_meta = algorithm.snapshot_state()
    for key, value in algorithm_arrays.items():
        arrays[f"algorithm/{key}"] = value
    return arrays, {"dataset": dataset_meta, "algorithm": algorithm_meta}


def restore_shard(
    arrays: dict[str, np.ndarray], meta: dict[str, Any], algorithm: Any
) -> SpatialDataset:
    """Rebuild a shard captured by :func:`snapshot_shard`.

    Returns the restored dataset (fresh uid, checkpointed version) and
    restores ``algorithm``'s cross-step state against it in place.
    Raises :class:`ValueError` on a checkpoint the algorithm refuses.
    """
    prefix = "dataset/"
    dataset_arrays = {
        key[len(prefix):]: value
        for key, value in arrays.items()
        if key.startswith(prefix)
    }
    dataset = restore_dataset(dataset_arrays, meta["dataset"])
    prefix = "algorithm/"
    algorithm_arrays = {
        key[len(prefix):]: value
        for key, value in arrays.items()
        if key.startswith(prefix)
    }
    algorithm.restore_state(algorithm_arrays, meta["algorithm"], dataset)
    return dataset


# ----------------------------------------------------------------------
# Motion models
# ----------------------------------------------------------------------
def _encode_rng(generator: np.random.Generator) -> dict[str, Any]:
    return {"kind": "rng", "state": generator.bit_generator.state}


def _decode_rng(entry: dict[str, Any]) -> np.random.Generator:
    state = entry["state"]
    name = state["bit_generator"]
    bit_generator_cls = getattr(np.random, name, None)
    if bit_generator_cls is None or not (
        isinstance(bit_generator_cls, type)
        and issubclass(bit_generator_cls, np.random.BitGenerator)
    ):
        raise ValueError(f"unknown bit generator {name!r} in checkpoint")
    bit_generator = bit_generator_cls()
    bit_generator.state = state
    return np.random.Generator(bit_generator)


def snapshot_motion(
    motion: MotionModel,
) -> tuple[dict[str, np.ndarray], dict[str, Any]]:
    """Reflectively capture a motion model's instance state.

    Supports the attribute shapes the shipped models use — ndarrays,
    tuples of ndarrays (bounds), seeded Generators and plain scalars —
    and refuses anything else loudly rather than pickling it.
    """
    arrays: dict[str, np.ndarray] = {}
    attrs: dict[str, Any] = {}
    for name, value in vars(motion).items():
        if isinstance(value, np.ndarray):
            arrays[f"attr/{name}"] = value
            attrs[name] = {"kind": "array"}
        elif isinstance(value, np.random.Generator):
            attrs[name] = _encode_rng(value)
        elif isinstance(value, tuple) and all(
            isinstance(item, np.ndarray) for item in value
        ):
            for index, item in enumerate(value):
                arrays[f"attr/{name}/{index}"] = item
            attrs[name] = {"kind": "array_tuple", "size": len(value)}
        elif isinstance(value, (bool, int, float, str)) or value is None:
            attrs[name] = {"kind": "scalar", "value": value}
        elif isinstance(value, np.integer):
            attrs[name] = {"kind": "scalar", "value": int(value)}
        elif isinstance(value, np.floating):
            attrs[name] = {"kind": "scalar", "value": float(value)}
        else:
            raise TypeError(
                f"motion attribute {name!r} of {type(motion).__name__} is not "
                f"checkpointable (type {type(value).__name__})"
            )
    meta = {
        "module": type(motion).__module__,
        "qualname": type(motion).__qualname__,
        "attrs": attrs,
    }
    return arrays, meta


def restore_motion(
    arrays: dict[str, np.ndarray], meta: dict[str, Any]
) -> MotionModel:
    """Rebuild a motion model captured by :func:`snapshot_motion`."""
    module = importlib.import_module(meta["module"])
    cls = module
    for part in str(meta["qualname"]).split("."):
        cls = getattr(cls, part)
    if not (isinstance(cls, type) and issubclass(cls, MotionModel)):
        raise ValueError(
            f"checkpointed motion class {meta['qualname']!r} is not a "
            "MotionModel"
        )
    motion = cls.__new__(cls)
    for name, entry in meta["attrs"].items():
        kind = entry["kind"]
        if kind == "array":
            value: Any = arrays[f"attr/{name}"]
        elif kind == "array_tuple":
            value = tuple(
                arrays[f"attr/{name}/{index}"]
                for index in range(int(entry["size"]))
            )
        elif kind == "rng":
            value = _decode_rng(entry)
        elif kind == "scalar":
            value = entry["value"]
        else:
            raise ValueError(f"unknown motion attribute kind {kind!r}")
        setattr(motion, name, value)
    return motion


# ----------------------------------------------------------------------
# Step records
# ----------------------------------------------------------------------
def step_record_to_jsonable(record: StepRecord) -> dict[str, Any]:
    """One completed step as a JSON-shaped dict (floats round-trip exactly)."""
    return {
        "step": record.step,
        "n_results": record.n_results,
        "join_seconds": record.join_seconds,
        "build_seconds": record.build_seconds,
        "overlap_tests": record.overlap_tests,
        "memory_bytes": record.memory_bytes,
        "phase_seconds": dict(record.phase_seconds),
        "stage_seconds": dict(record.stage_seconds),
        "events": list(record.events),
        "task_retries": record.task_retries,
        "index_counters": dict(record.index_counters),
        "incremental": dict(record.incremental),
    }


def step_record_from_jsonable(doc: dict[str, Any]) -> StepRecord:
    """Inverse of :func:`step_record_to_jsonable`."""
    from repro.simulation.runner import StepRecord

    return StepRecord(
        step=int(doc["step"]),
        n_results=int(doc["n_results"]),
        join_seconds=float(doc["join_seconds"]),
        build_seconds=float(doc["build_seconds"]),
        overlap_tests=int(doc["overlap_tests"]),
        memory_bytes=int(doc["memory_bytes"]),
        phase_seconds=dict(doc["phase_seconds"]),
        stage_seconds=dict(doc["stage_seconds"]),
        events=list(doc["events"]),
        task_retries=int(doc["task_retries"]),
        index_counters=dict(doc["index_counters"]),
        incremental=dict(doc["incremental"]),
    )
