"""Neural-plasticity simulation: the paper's driving use case (§3.1).

Reproduces the structure of the Human Brain Project workload on the
synthetic tissue generator: at every time step the branches remodel
(all objects move), then a *distance join* with predicate ``d`` finds
every pair of segments within interaction range so the "electrical
attraction and repulsion forces" could be evaluated on them.

The distance join is executed exactly as the paper describes — by
enlarging every object's extent by ``d`` and running the overlap join —
and THERMAL-JOIN is compared against the CR-Tree on identical steps.

Run::

    python examples/neural_simulation.py
"""

import numpy as np

from repro import CRTreeJoin, ThermalJoin, make_neural_workload

N_OBJECTS = 8_000
N_STEPS = 6
INTERACTION_DISTANCE = 1.0


def main():
    dataset, motion, labels = make_neural_workload(N_OBJECTS, seed=7)
    n_neurons = int(labels.max()) + 1
    print(
        f"tissue: {N_OBJECTS} cylinder segments across {n_neurons} neurons, "
        f"extent {dataset.max_width:.2f} units, distance predicate d={INTERACTION_DISTANCE}"
    )

    # The distance join: a shared-center view with extents enlarged by d.
    interaction_view = dataset.with_enlarged_extent(INTERACTION_DISTANCE)

    thermal = ThermalJoin(cost_model="operations")
    crtree = CRTreeJoin()

    print(f"\n{'step':>4} {'pairs':>10} {'thermal [ms]':>13} {'cr-tree [ms]':>13} {'tests t/c':>16}")
    for step in range(N_STEPS):
        thermal_result = thermal.step(interaction_view)
        crtree_result = crtree.step(interaction_view)
        assert thermal_result.n_results == crtree_result.n_results
        print(
            f"{step:>4} {thermal_result.n_results:>10,} "
            f"{thermal_result.stats.total_seconds * 1e3:>13.1f} "
            f"{crtree_result.stats.total_seconds * 1e3:>13.1f} "
            f"{thermal_result.stats.overlap_tests:>7,}/{crtree_result.stats.overlap_tests:,}"
        )
        motion.step(dataset)  # plasticity: every segment moves

    # Use the final join's pairs the way the simulation would: compute a
    # toy pairwise interaction (inverse-square repulsion between segment
    # centers) accumulated per object.
    result = thermal.step(interaction_view)
    i_idx, j_idx = result.pairs
    delta = dataset.centers[j_idx] - dataset.centers[i_idx]
    dist_sq = np.maximum((delta * delta).sum(axis=1), 1e-6)
    force = delta / dist_sq[:, None]
    forces = np.zeros_like(dataset.centers)
    np.add.at(forces, i_idx, force)
    np.add.at(forces, j_idx, -force)
    magnitude = np.linalg.norm(forces, axis=1)
    print(
        f"\nper-segment interaction forces: mean={magnitude.mean():.3f}, "
        f"max={magnitude.max():.3f} (computed from {result.n_results:,} pairs)"
    )


if __name__ == "__main__":
    main()
