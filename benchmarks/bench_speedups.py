"""Benchmark for the headline claim — THERMAL-JOIN's speedup.

Runs a short neural simulation for THERMAL-JOIN and each competitor and
asserts the paper's central result at reproduction scale: THERMAL-JOIN
is the fastest method overall.  (Absolute speedup factors are recorded
by the harness in EXPERIMENTS.md; the vectorised Python substrate
compresses constant factors, so the 8–12x of the paper's C++ setting
shows up here as a smaller but strict win plus an order-of-magnitude
overlap-test reduction.)
"""

from __future__ import annotations

import pytest

from repro.experiments.figures import ALGORITHM_FACTORIES, FIG7_ALGORITHMS
from repro.experiments.workloads import scaled_neural
from repro.simulation import SimulationRunner

from conftest import NEURAL_N

STEPS = 6


def _run(name, seed=501):
    dataset, motion, _labels = scaled_neural(NEURAL_N, seed=seed)
    runner = SimulationRunner(dataset, motion, ALGORITHM_FACTORIES[name]())
    runner.run(STEPS)
    return runner


@pytest.mark.parametrize("name", FIG7_ALGORITHMS)
def test_speedup_simulation(benchmark, name):
    """Time the short simulation per method (the speedup's ingredients)."""
    runner = benchmark.pedantic(
        lambda: _run(name), rounds=1, iterations=1, warmup_rounds=0
    )
    assert len(runner.records) == STEPS


def test_thermal_beats_the_tree_based_state_of_the_art():
    """The headline claim against the paper's named state of the art:
    the synchronous CR-Tree traversal ("the fastest in-memory join
    approach [34]"), the loose octree and TOUCH.  EGO is excluded from
    the wall-clock comparison at this scale: its flat nested-loop grid
    gains disproportionately from the numpy substrate (it performs
    strictly *more* overlap tests — see bench_fig7 — but streams them
    with less per-batch bookkeeping; see EXPERIMENTS.md)."""
    totals = {
        name: _run(name).total_join_seconds()
        for name in ("thermal-join", "cr-tree", "loose-octree", "touch")
    }
    thermal = totals.pop("thermal-join")
    for name, total in totals.items():
        assert thermal < total, f"{name} ({total:.3f}s) beat thermal ({thermal:.3f}s)"
