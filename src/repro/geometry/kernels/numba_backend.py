"""Loop-core backends: optional numba JIT plus an interpreted twin.

Both backends execute the scalar loop cores of
:mod:`repro.geometry.kernels.loops` behind the same columnar wrappers;
the only difference is how the cores run:

``numba``
    JIT-compiles each core with ``numba.njit(cache=True, nogil=True)``.
    numba is an *optional* dependency — the import is guarded, the
    dispatch registry probes :func:`numba_available` before selecting
    it, and environments without numba fall back to the numpy oracle
    with a warning instead of an ImportError.
``python``
    Runs the identical cores interpreted.  Orders of magnitude slower
    than numpy — it exists so the backend-parity suite exercises the
    exact loop code numba would compile even where numba is absent, and
    as a single-stepping debug aid.

Wrappers prepare the grouped-order coordinate columns, run each core
twice (count, then fill exact-size outputs), map the resulting positions
back to object ids and emit — so both backends return pair sets and
counters bit-identical to the numpy oracle.
"""

from __future__ import annotations

import importlib.util

import numpy as np

from typing import TYPE_CHECKING, Any, Callable

from repro.geometry.kernels import loops

if TYPE_CHECKING:
    from repro.geometry.kernels.numpy_backend import PairCallback
    from repro.geometry.pairs import PairAccumulator

__all__ = ["numba_available", "make_python_kernels", "make_numba_kernels"]

_EMPTY = np.empty(0, dtype=np.int64)


def numba_available() -> bool:
    """Whether the optional numba dependency can be imported."""
    return importlib.util.find_spec("numba") is not None


def _grouped_columns(
    lo: np.ndarray, hi: np.ndarray, cat: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Contiguous per-axis columns of the boxes in grouped (``cat``) order."""
    ordered_lo = lo[cat]
    ordered_hi = hi[cat]
    return (
        np.ascontiguousarray(ordered_lo[:, 0]),
        np.ascontiguousarray(ordered_hi[:, 0]),
        np.ascontiguousarray(ordered_lo[:, 1]),
        np.ascontiguousarray(ordered_hi[:, 1]),
        np.ascontiguousarray(ordered_lo[:, 2]),
        np.ascontiguousarray(ordered_hi[:, 2]),
    )


def _as_index(values: np.ndarray) -> np.ndarray:
    return np.ascontiguousarray(np.asarray(values, dtype=np.int64))


def _build_kernels(cores: dict[str, Callable[..., Any]]) -> dict[str, Callable[..., Any]]:
    """Bind the five columnar wrappers to one set of loop cores."""
    self_core = cores["self_join_groups"]
    cross_core = cores["cross_join_groups"]
    cell_core = cores["cell_pair_sweep"]
    strip_core = cores["strip_sweep"]
    hot_core = cores["hot_cell_emit"]

    def self_join_groups(
        lo: np.ndarray,
        hi: np.ndarray,
        cat: np.ndarray,
        starts: np.ndarray,
        stops: np.ndarray,
        groups: np.ndarray,
        on_pairs: PairCallback,
        count: str = "full",
        chunk_candidates: int = 2_000_000,
    ) -> int:
        if count not in ("full", "x-sweep"):
            raise ValueError(f"unknown count mode {count!r}")
        groups = _as_index(groups)
        if groups.size == 0:
            return 0
        xlo, xhi, ylo, yhi, zlo, zhi = _grouped_columns(lo, hi, cat)
        starts = _as_index(starts)
        stops = _as_index(stops)
        full = count == "full"
        n, tests = self_core(
            xlo, xhi, ylo, yhi, zlo, zhi, starts, stops, groups, full,
            _EMPTY, _EMPTY, _EMPTY, False,
        )
        if n:
            left = np.empty(n, dtype=np.int64)
            right = np.empty(n, dtype=np.int64)
            grp = np.empty(n, dtype=np.int64)
            self_core(
                xlo, xhi, ylo, yhi, zlo, zhi, starts, stops, groups, full,
                left, right, grp, True,
            )
            on_pairs(cat[left], cat[right], grp)
        return int(tests)

    def cross_join_groups(
        lo: np.ndarray,
        hi: np.ndarray,
        cat_a: np.ndarray,
        starts_a: np.ndarray,
        stops_a: np.ndarray,
        cat_b: np.ndarray,
        starts_b: np.ndarray,
        stops_b: np.ndarray,
        pair_a: np.ndarray,
        pair_b: np.ndarray,
        on_pairs: PairCallback,
        count: str = "full",
        chunk_candidates: int = 2_000_000,
    ) -> int:
        if count not in ("full", "x-sweep"):
            raise ValueError(f"unknown count mode {count!r}")
        pair_a = _as_index(pair_a)
        pair_b = _as_index(pair_b)
        if pair_a.size == 0:
            return 0
        cols_a = _grouped_columns(lo, hi, cat_a)
        cols_b = cols_a if cat_b is cat_a else _grouped_columns(lo, hi, cat_b)
        starts_a = _as_index(starts_a)
        stops_a = _as_index(stops_a)
        starts_b = _as_index(starts_b)
        stops_b = _as_index(stops_b)
        full = count == "full"
        n, tests = cross_core(
            *cols_a, *cols_b, starts_a, stops_a, starts_b, stops_b,
            pair_a, pair_b, full, _EMPTY, _EMPTY, _EMPTY, False,
        )
        if n:
            left = np.empty(n, dtype=np.int64)
            right = np.empty(n, dtype=np.int64)
            grp = np.empty(n, dtype=np.int64)
            cross_core(
                *cols_a, *cols_b, starts_a, stops_a, starts_b, stops_b,
                pair_a, pair_b, full, left, right, grp, True,
            )
            on_pairs(cat_a[left], cat_b[right], grp)
        return int(tests)

    def cell_pair_sweep(
        lo: np.ndarray,
        hi: np.ndarray,
        cat: np.ndarray,
        starts: np.ndarray,
        stops: np.ndarray,
        center_lo: np.ndarray,
        center_hi: np.ndarray,
        pair_a: np.ndarray,
        pair_b: np.ndarray,
        accumulator: PairAccumulator,
        chunk_candidates: int = 2_000_000,
        enclosure_shortcut: bool = True,
    ) -> tuple[int, int]:
        pair_a = _as_index(pair_a)
        pair_b = _as_index(pair_b)
        if pair_a.size == 0:
            return 0, 0
        xlo, xhi, ylo, yhi, zlo, zhi = _grouped_columns(lo, hi, cat)
        starts = _as_index(starts)
        stops = _as_index(stops)
        center_lo = np.ascontiguousarray(np.asarray(center_lo, dtype=np.float64))
        center_hi = np.ascontiguousarray(np.asarray(center_hi, dtype=np.float64))
        max_a = int((stops - starts)[pair_a].max(initial=0))
        flags = np.zeros(max(max_a, 1), dtype=np.bool_)
        n, tests, shortcuts = cell_core(
            xlo, xhi, ylo, yhi, zlo, zhi, center_lo, center_hi,
            starts, stops, pair_a, pair_b, enclosure_shortcut, flags,
            _EMPTY, _EMPTY, False,
        )
        if n:
            left = np.empty(n, dtype=np.int64)
            right = np.empty(n, dtype=np.int64)
            cell_core(
                xlo, xhi, ylo, yhi, zlo, zhi, center_lo, center_hi,
                starts, stops, pair_a, pair_b, enclosure_shortcut, flags,
                left, right, True,
            )
            accumulator.extend(cat[left], cat[right])
        return int(tests), int(shortcuts)

    def strip_sweep(
        lo: np.ndarray,
        hi: np.ndarray,
        ids: np.ndarray,
        start: int,
        stop: int,
        carry: np.ndarray,
        accumulator: PairAccumulator,
    ) -> int:
        lo = np.ascontiguousarray(np.asarray(lo, dtype=np.float64))
        hi = np.ascontiguousarray(np.asarray(hi, dtype=np.float64))
        carry = _as_index(carry)
        n, tests = strip_core(
            lo, hi, int(start), int(stop), carry, _EMPTY, _EMPTY, False
        )
        if n:
            left = np.empty(n, dtype=np.int64)
            right = np.empty(n, dtype=np.int64)
            strip_core(lo, hi, int(start), int(stop), carry, left, right, True)
            accumulator.extend(ids[left], ids[right])
        return int(tests)

    def hot_cell_emit(
        cat: np.ndarray,
        starts: np.ndarray,
        stops: np.ndarray,
        hot_slots: np.ndarray,
        accumulator: PairAccumulator,
    ) -> int:
        hot_slots = _as_index(hot_slots)
        if hot_slots.size == 0:
            return 0
        starts = _as_index(starts)
        stops = _as_index(stops)
        n = hot_core(starts, stops, hot_slots, _EMPTY, _EMPTY, False)
        if n:
            left = np.empty(n, dtype=np.int64)
            right = np.empty(n, dtype=np.int64)
            hot_core(starts, stops, hot_slots, left, right, True)
            accumulator.extend(cat[left], cat[right])
        return int(n)

    return {
        "self_join_groups": self_join_groups,
        "cross_join_groups": cross_join_groups,
        "cell_pair_sweep": cell_pair_sweep,
        "strip_sweep": strip_sweep,
        "hot_cell_emit": hot_cell_emit,
    }


_CORE_NAMES = (
    "self_join_groups",
    "cross_join_groups",
    "cell_pair_sweep",
    "strip_sweep",
    "hot_cell_emit",
)


def make_python_kernels() -> dict[str, Callable[..., Any]]:
    """The interpreted twin: the numba loop cores, uncompiled."""
    cores = {name: getattr(loops, f"{name}_core") for name in _CORE_NAMES}
    return _build_kernels(cores)


def make_numba_kernels() -> dict[str, Callable[..., Any]]:
    """JIT-compile the loop cores; raises ImportError when numba is absent.

    Compilation is lazy (first call per core signature); ``nogil`` lets
    the engine's thread executor run kernels in parallel and ``cache``
    persists the compiled cores across processes.
    """
    import numba

    jit = numba.njit(cache=True, nogil=True)
    cores = {name: jit(getattr(loops, f"{name}_core")) for name in _CORE_NAMES}
    return _build_kernels(cores)
